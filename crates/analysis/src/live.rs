//! Online swarm-health monitors — the paper's invariants, watched live.
//!
//! The classic pipeline in this crate scores *finished* traces; this
//! module scores a swarm **while it runs**. A [`HealthMonitor`] is fed
//! one [`LiveSample`] per sampling round (the simulator does this on
//! its metrics `Sample` event; a live engine can do it per choke
//! round) and maintains four verdicts, one per paper claim:
//!
//! | monitor | observable | paper anchor |
//! |---|---|---|
//! | `entropy` | normalized availability entropy | §IV: rarest-first keeps piece availability ≈ uniform |
//! | `replication` | min/max piece replication | §IV-B: the rarest set never empties (no missing piece) |
//! | `reciprocation` | reciprocated ÷ leecher unchokes | §V: choke algorithm's tit-for-tat clusters |
//! | `starvation` | max seconds any leecher has gone blockless | §IV-A.2: flash-crowd service rate |
//!
//! Each observable is published as `live.*` gauges (and float series
//! when a [`SeriesStore`] is attached), and each healthy→unhealthy
//! transition emits one `obs_warn!` event (with an `obs_info!` on
//! recovery) rather than warning every round. All state is derived
//! from the fed samples alone — no clocks, no RNG — so under a manual
//! time source the monitor is deterministic and safe to run inside the
//! reproducibility-pinned simulator.

use std::sync::{Arc, Mutex};

use bt_obs::series::json_f64;
use bt_obs::{obs_info, obs_warn, Gauge, Registry, SeriesStore};

/// Normalized Shannon entropy of a piece-replication vector, in
/// `[0, 1]`: `1.0` when every piece has the same number of copies,
/// lower the more lopsided replication gets.
///
/// Degenerate inputs (zero or one piece, or no copies at all anywhere)
/// are vacuously uniform and return `1.0`.
pub fn availability_entropy(counts: &[u32]) -> f64 {
    if counts.len() <= 1 {
        return 1.0;
    }
    let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
    if total == 0 {
        return 1.0;
    }
    let mut h = 0.0f64;
    for &c in counts {
        if c == 0 {
            continue;
        }
        let p = f64::from(c) / total as f64;
        h -= p * p.ln();
    }
    (h / (counts.len() as f64).ln()).clamp(0.0, 1.0)
}

/// Warning thresholds for the four monitors; see the
/// [module docs](self) for what each one watches.
#[derive(Clone, Debug)]
pub struct Thresholds {
    /// `entropy` warns below this normalized entropy.
    pub min_entropy: f64,
    /// `reciprocation` warns below this reciprocated fraction.
    pub min_reciprocation: f64,
    /// `starvation` warns when a leecher has gone this many seconds
    /// without receiving a block.
    pub max_starvation_secs: u64,
    /// `replication` warns when `max/min` replication exceeds this
    /// ratio (`None` = only warn on a missing piece, `min == 0`).
    pub max_spread_ratio: Option<f64>,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            min_entropy: 0.7,
            min_reciprocation: 0.2,
            max_starvation_secs: 900,
            max_spread_ratio: None,
        }
    }
}

/// One round of ground-truth observations, fed to
/// [`HealthMonitor::observe`]. All slices describe the *current* swarm
/// state; the monitor copies what it keeps.
#[derive(Clone, Copy, Debug)]
pub struct LiveSample<'a> {
    /// Copies of each piece across live peers (the availability index).
    pub counts: &'a [u32],
    /// Directed unchokes held by *leechers* this round (seed unchokes
    /// are altruistic by design and excluded from reciprocity).
    pub leecher_unchokes: u64,
    /// How many of those unchokes the counterpart reciprocates.
    pub reciprocated: u64,
    /// Seconds since each live leecher last received a block (or
    /// joined); seeds and departed peers are not included.
    pub starvation_secs: &'a [u64],
}

/// Verdict of a single monitor at the latest observed round.
#[derive(Clone, Debug, PartialEq)]
pub struct MonitorVerdict {
    /// Monitor name: `entropy`, `replication`, `reciprocation` or
    /// `starvation`.
    pub name: &'static str,
    /// Whether the observable is on the healthy side of its threshold.
    pub healthy: bool,
    /// The observable's current value.
    pub value: f64,
    /// The threshold it is judged against.
    pub threshold: f64,
}

/// Point-in-time health report: every monitor's verdict plus overall
/// status. `monitors` is empty (and [`healthy`](Self::healthy) is
/// vacuously true) until the first sample arrives.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct HealthReport {
    /// Clock reading (µs) of the latest observed sample.
    pub at_micros: u64,
    /// Number of samples observed so far.
    pub samples: u64,
    /// Per-monitor verdicts, in fixed order.
    pub monitors: Vec<MonitorVerdict>,
}

impl HealthReport {
    /// True when every monitor is healthy (or none has reported yet).
    pub fn healthy(&self) -> bool {
        self.monitors.iter().all(|m| m.healthy)
    }

    /// Serialize as a self-contained JSON object (deterministic for
    /// identical reports):
    ///
    /// ```json
    /// {"healthy":true,"samples":12,"at_micros":360000000,
    ///  "monitors":[{"name":"entropy","healthy":true,
    ///               "value":0.98,"threshold":0.7}, ...]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.monitors.len() * 96);
        out.push_str(&format!(
            "{{\"healthy\":{},\"samples\":{},\"at_micros\":{},\"monitors\":[",
            self.healthy(),
            self.samples,
            self.at_micros
        ));
        for (i, m) in self.monitors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"healthy\":{},\"value\":{},\"threshold\":{}}}",
                m.name,
                m.healthy,
                json_f64(m.value),
                json_f64(m.threshold)
            ));
        }
        out.push_str("]}");
        out
    }

    /// One-line human summary for end-of-run printouts.
    pub fn summary_line(&self) -> String {
        if self.monitors.is_empty() {
            return "no samples".to_string();
        }
        let parts: Vec<String> = self
            .monitors
            .iter()
            .map(|m| {
                format!(
                    "{}={:.3} {}",
                    m.name,
                    m.value,
                    if m.healthy { "ok" } else { "WARN" }
                )
            })
            .collect();
        format!("{} ({} samples)", parts.join(", "), self.samples)
    }
}

struct Gauges {
    entropy_milli: Gauge,
    replication_min: Gauge,
    replication_max: Gauge,
    reciprocation_milli: Gauge,
    starved_peers: Gauge,
    max_starvation_secs: Gauge,
}

struct MonitorInner {
    registry: Registry,
    thresholds: Thresholds,
    series: Mutex<Option<SeriesStore>>,
    gauges: Gauges,
    state: Mutex<HealthReport>,
}

/// Incremental health monitor; see the [module docs](self).
///
/// Cloning is cheap; all clones share state, so an HTTP server thread
/// can render [`report`](Self::report) while the swarm thread feeds
/// [`observe`](Self::observe).
#[derive(Clone)]
pub struct HealthMonitor {
    inner: Arc<MonitorInner>,
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthMonitor")
            .field("thresholds", &self.inner.thresholds)
            .finish_non_exhaustive()
    }
}

impl HealthMonitor {
    /// New monitor publishing `live.*` gauges into `registry`.
    pub fn new(registry: &Registry, thresholds: Thresholds) -> HealthMonitor {
        let gauges = Gauges {
            entropy_milli: registry.gauge("live.entropy_milli"),
            replication_min: registry.gauge("live.replication_min"),
            replication_max: registry.gauge("live.replication_max"),
            reciprocation_milli: registry.gauge("live.reciprocation_milli"),
            starved_peers: registry.gauge("live.starved_peers"),
            max_starvation_secs: registry.gauge("live.max_starvation_secs"),
        };
        HealthMonitor {
            inner: Arc::new(MonitorInner {
                registry: registry.clone(),
                thresholds,
                series: Mutex::new(None),
                gauges,
                state: Mutex::new(HealthReport::default()),
            }),
        }
    }

    /// Also record `live.entropy` / `live.reciprocation` float series
    /// into `store` on every observation.
    pub fn set_series(&self, store: SeriesStore) {
        *self.inner.series.lock().unwrap() = Some(store);
    }

    /// The monitor's thresholds.
    pub fn thresholds(&self) -> &Thresholds {
        &self.inner.thresholds
    }

    /// Feed one sampling round; updates gauges and series, emits
    /// threshold-crossing events, and refreshes [`report`](Self::report).
    pub fn observe(&self, now_micros: u64, sample: &LiveSample<'_>) {
        let t = &self.inner.thresholds;
        let g = &self.inner.gauges;

        let entropy = availability_entropy(sample.counts);
        let min = sample.counts.iter().copied().min().unwrap_or(0);
        let max = sample.counts.iter().copied().max().unwrap_or(0);
        let spread_ratio = if min > 0 {
            f64::from(max) / f64::from(min)
        } else {
            f64::INFINITY
        };
        // An empty piece vector (or empty swarm) judges vacuously.
        let replication_ok = sample.counts.is_empty()
            || (min > 0 && t.max_spread_ratio.is_none_or(|r| spread_ratio <= r));
        let reciprocation = if sample.leecher_unchokes == 0 {
            1.0
        } else {
            sample.reciprocated as f64 / sample.leecher_unchokes as f64
        };
        let max_starvation = sample.starvation_secs.iter().copied().max().unwrap_or(0);
        let starved = sample
            .starvation_secs
            .iter()
            .filter(|&&s| s > t.max_starvation_secs)
            .count();

        g.entropy_milli.set((entropy * 1000.0).round() as i64);
        g.replication_min.set(i64::from(min));
        g.replication_max.set(i64::from(max));
        g.reciprocation_milli
            .set((reciprocation * 1000.0).round() as i64);
        g.starved_peers.set(starved as i64);
        g.max_starvation_secs.set(max_starvation as i64);

        if let Some(store) = self.inner.series.lock().unwrap().as_ref() {
            store.record_at("live.entropy", now_micros, entropy);
            store.record_at("live.reciprocation", now_micros, reciprocation);
        }

        let verdicts = vec![
            MonitorVerdict {
                name: "entropy",
                healthy: entropy >= t.min_entropy,
                value: entropy,
                threshold: t.min_entropy,
            },
            MonitorVerdict {
                name: "replication",
                healthy: replication_ok,
                value: if spread_ratio.is_finite() {
                    spread_ratio
                } else {
                    0.0
                },
                threshold: t.max_spread_ratio.unwrap_or(0.0),
            },
            MonitorVerdict {
                name: "reciprocation",
                healthy: reciprocation >= t.min_reciprocation,
                value: reciprocation,
                threshold: t.min_reciprocation,
            },
            MonitorVerdict {
                name: "starvation",
                healthy: max_starvation <= t.max_starvation_secs,
                value: max_starvation as f64,
                threshold: t.max_starvation_secs as f64,
            },
        ];

        let mut state = self.inner.state.lock().unwrap();
        for v in &verdicts {
            let was = state
                .monitors
                .iter()
                .find(|m| m.name == v.name)
                .map(|m| m.healthy);
            if was != Some(v.healthy) && !(was.is_none() && v.healthy) {
                let reg = &self.inner.registry;
                if v.healthy {
                    obs_info!(
                        reg,
                        "live",
                        "health.recovered",
                        "monitor" = v.name,
                        "value" = v.value,
                        "threshold" = v.threshold,
                    );
                } else {
                    obs_warn!(
                        reg,
                        "live",
                        "health.threshold_crossed",
                        "monitor" = v.name,
                        "value" = v.value,
                        "threshold" = v.threshold,
                    );
                }
            }
        }
        state.at_micros = now_micros;
        state.samples += 1;
        state.monitors = verdicts;
    }

    /// The latest [`HealthReport`] (empty before the first sample).
    pub fn report(&self) -> HealthReport {
        self.inner.state.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_obs::{Level, RingSink, TimeSource};
    use std::sync::Arc;

    #[test]
    fn entropy_of_uniform_counts_is_one() {
        assert_eq!(availability_entropy(&[3, 3, 3, 3]), 1.0);
        assert_eq!(availability_entropy(&[]), 1.0);
        assert_eq!(availability_entropy(&[7]), 1.0);
        assert_eq!(availability_entropy(&[0, 0, 0]), 1.0);
    }

    #[test]
    fn entropy_drops_as_replication_skews() {
        let uniform = availability_entropy(&[5, 5, 5, 5]);
        let skewed = availability_entropy(&[17, 1, 1, 1]);
        let degenerate = availability_entropy(&[20, 0, 0, 0]);
        assert!(skewed < uniform, "{skewed} !< {uniform}");
        assert!(degenerate < skewed, "{degenerate} !< {skewed}");
        assert_eq!(degenerate, 0.0);
    }

    fn healthy_sample() -> LiveSample<'static> {
        LiveSample {
            counts: &[4, 4, 5, 4],
            leecher_unchokes: 10,
            reciprocated: 8,
            starvation_secs: &[5, 30, 0],
        }
    }

    #[test]
    fn healthy_swarm_reports_all_ok() {
        let reg = Registry::new(TimeSource::manual());
        let mon = HealthMonitor::new(&reg, Thresholds::default());
        assert!(mon.report().healthy());
        assert_eq!(mon.report().monitors.len(), 0);

        mon.observe(1_000_000, &healthy_sample());
        let report = mon.report();
        assert!(report.healthy());
        assert_eq!(report.samples, 1);
        assert_eq!(report.at_micros, 1_000_000);
        assert_eq!(report.monitors.len(), 4);

        let snap = reg.snapshot();
        assert_eq!(snap.gauge("live.entropy_milli", ""), Some(996));
        assert_eq!(snap.gauge("live.replication_min", ""), Some(4));
        assert_eq!(snap.gauge("live.replication_max", ""), Some(5));
        assert_eq!(snap.gauge("live.reciprocation_milli", ""), Some(800));
        assert_eq!(snap.gauge("live.starved_peers", ""), Some(0));
    }

    #[test]
    fn missing_piece_trips_replication_monitor() {
        let reg = Registry::new(TimeSource::manual());
        let mon = HealthMonitor::new(&reg, Thresholds::default());
        mon.observe(
            0,
            &LiveSample {
                counts: &[0, 9, 9, 9],
                leecher_unchokes: 0,
                reciprocated: 0,
                starvation_secs: &[],
            },
        );
        let report = mon.report();
        assert!(!report.healthy());
        let rep = report
            .monitors
            .iter()
            .find(|m| m.name == "replication")
            .unwrap();
        assert!(!rep.healthy);
    }

    #[test]
    fn warn_fires_once_per_transition_and_recovery_logs() {
        let reg = Registry::new(TimeSource::manual());
        let ring = Arc::new(RingSink::new(32));
        reg.set_sink(ring.clone(), Level::Info);
        let mon = HealthMonitor::new(&reg, Thresholds::default());

        let starving = LiveSample {
            starvation_secs: &[2000],
            ..healthy_sample()
        };
        mon.observe(0, &starving);
        mon.observe(1, &starving); // still unhealthy: no second warn
        mon.observe(2, &healthy_sample()); // recovery: one info
        let records = ring.records();
        let warns: Vec<_> = records
            .iter()
            .filter(|r| r.name == "health.threshold_crossed")
            .collect();
        let infos: Vec<_> = records
            .iter()
            .filter(|r| r.name == "health.recovered")
            .collect();
        assert_eq!(warns.len(), 1, "{records:?}");
        assert_eq!(warns[0].fields[0], ("monitor".into(), "starvation".into()));
        assert_eq!(infos.len(), 1, "{records:?}");
    }

    #[test]
    fn report_json_is_wellformed_and_deterministic() {
        let reg = Registry::new(TimeSource::manual());
        let mon = HealthMonitor::new(&reg, Thresholds::default());
        assert_eq!(
            mon.report().to_json(),
            "{\"healthy\":true,\"samples\":0,\"at_micros\":0,\"monitors\":[]}"
        );
        mon.observe(5, &healthy_sample());
        let json = mon.report().to_json();
        assert_eq!(json, mon.report().to_json());
        assert!(json.starts_with("{\"healthy\":true,\"samples\":1,\"at_micros\":5,"));
        assert!(json.contains("{\"name\":\"entropy\",\"healthy\":true,"));
        assert!(json.contains("\"threshold\":0.7}"));
    }

    #[test]
    fn vacuous_rounds_stay_healthy() {
        let reg = Registry::new(TimeSource::manual());
        let mon = HealthMonitor::new(&reg, Thresholds::default());
        mon.observe(
            0,
            &LiveSample {
                counts: &[],
                leecher_unchokes: 0,
                reciprocated: 0,
                starvation_secs: &[],
            },
        );
        assert!(mon.report().healthy());
    }

    #[test]
    fn entropy_series_recorded_when_store_attached() {
        let reg = Registry::new(TimeSource::manual());
        let store = SeriesStore::new(&reg);
        let mon = HealthMonitor::new(&reg, Thresholds::default());
        mon.set_series(store.clone());
        mon.observe(7, &healthy_sample());
        let pts = store.get("live.entropy").unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].0, 7);
        assert!(pts[0].1 > 0.9);
        assert_eq!(store.get("live.reciprocation").unwrap()[0].1, 0.8);
    }
}
