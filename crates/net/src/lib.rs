//! Real-socket runtime for the sans-io `bt-core` engine.
//!
//! The engine is a pure state machine: [`bt_core::Input`]s go in,
//! [`bt_core::Action`]s come out, and nothing inside it touches a
//! socket or a clock. `bt-sim` drives that API from a deterministic
//! event queue; this crate drives the *same* API from non-blocking
//! `std::net` TCP:
//!
//! - [`runtime::NetRuntime`] — the poll loop: accepts, dials with
//!   bounded retry and backoff, exchanges handshakes, frames messages
//!   through the `bt-wire` codec, and feeds [`bt_core::Input::Tick`]
//!   when the virtual clock passes the engine's armed deadline.
//! - [`clock::AccelClock`] — maps wall time onto the engine's virtual
//!   microsecond axis, optionally accelerated so protocol timescales
//!   (10 s choke rounds) compress into test-friendly wall budgets.
//! - [`tracker::LoopbackTracker`] — an in-process BEP 3 tracker mapping
//!   the engine's virtual peer addresses to real socket addresses.
//! - [`loopback::run_loopback_swarm`] — an end-to-end harness: one
//!   runtime thread per peer on loopback, completing a real torrent and
//!   emitting the same `bt-instrument` traces as the simulator.
//! - [`metrics::NetMetrics`] — `bt-obs` telemetry handles: every
//!   runtime reports `net.*` counters, gauges and a handshake-latency
//!   histogram, per-peer labeled when a swarm shares one registry.
//! - [`http::ObsServer`] — a tiny non-blocking observability listener:
//!   `GET /metrics` (Prometheus exposition), `GET /series` (time-series
//!   JSON), `GET /health` (monitor verdicts) and `GET /` (a
//!   self-contained live dashboard), so a live run can be scraped with
//!   `curl` or watched in a browser.

#![warn(missing_docs)]

pub mod clock;
pub mod http;
pub mod loopback;
pub mod metrics;
pub mod runtime;
pub mod tracker;

pub use clock::{AccelClock, DEFAULT_ACCEL};
pub use http::ObsServer;
pub use loopback::{run_loopback_swarm, LoopbackResult, LoopbackSpec, PeerOutcome};
pub use metrics::NetMetrics;
pub use runtime::{peer_ip, NetConfig, NetRuntime, NetStats};
pub use tracker::LoopbackTracker;
