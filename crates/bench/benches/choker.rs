//! Choke-algorithm benchmarks: one rechoke round over an 80-peer set for
//! each strategy, plus the rate estimator's hot path.

use bt_choke::{ChokerKind, PeerSnapshot, RateEstimator};
use bt_wire::time::{Duration, Instant};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn snapshots(n: u32) -> Vec<PeerSnapshot> {
    let mut rng = SmallRng::seed_from_u64(3);
    (0..n)
        .map(|key| PeerSnapshot {
            key,
            interested: rng.random_bool(0.8),
            unchoked: rng.random_bool(0.1),
            download_rate: rng.random_range(0.0..100_000.0),
            upload_rate: rng.random_range(0.0..100_000.0),
            last_unchoked: if rng.random_bool(0.3) {
                Some(Instant::from_secs(rng.random_range(0..1000)))
            } else {
                None
            },
            uploaded_to: rng.random_range(0..10_000_000),
            downloaded_from: rng.random_range(0..10_000_000),
            snubbed: rng.random_bool(0.1),
        })
        .collect()
}

fn bench_rechoke(c: &mut Criterion) {
    let peers = snapshots(80);
    let mut group = c.benchmark_group("rechoke_80_peers");
    for (name, build) in [
        ("leecher", ChokerKind::Standard.build_leecher()),
        ("seed_new", ChokerKind::Standard.build_seed()),
        ("seed_old", ChokerKind::OldSeed.build_seed()),
        ("tit_for_tat", ChokerKind::TitForTat.build_leecher()),
    ] {
        let mut choker = build;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut t = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                t += 10;
                black_box(choker.rechoke(Instant::from_secs(t), &peers, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_rate_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("rate_estimator");
    group.bench_function("record_and_rate", |b| {
        let mut est = RateEstimator::new(Duration::from_secs(20));
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            est.record(Instant::from_secs(t), 16384);
            black_box(est.rate(Instant::from_secs(t)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rechoke, bench_rate_estimator);
criterion_main!(benches);
