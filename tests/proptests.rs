//! Property-based tests over the wire formats and core data structures.

use bt_repro::piece::{Availability, Bitfield};
use bt_repro::wire::bencode::{self, Value};
use bt_repro::wire::message::{BlockRef, Decoder, Message};
use bt_repro::wire::sha1::{sha1, Sha1};
use bt_repro::wire::tracker::{AnnounceResponse, PeerEntry};
use bt_repro::wire::{Handshake, IpAddr, PeerId};
use bytes::Bytes;
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Generators
// ----------------------------------------------------------------------

fn arb_bencode_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(3, 48, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
            proptest::collection::btree_map(
                proptest::collection::vec(any::<u8>(), 0..16),
                inner,
                0..6
            )
            .prop_map(Value::Dict),
        ]
    })
}

fn arb_block_ref() -> impl Strategy<Value = BlockRef> {
    (0u32..10_000, 0u32..16u32, 1u32..=16384).prop_map(|(piece, blk, length)| BlockRef {
        piece,
        offset: blk * 16384,
        length,
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::KeepAlive),
        Just(Message::Choke),
        Just(Message::Unchoke),
        Just(Message::Interested),
        Just(Message::NotInterested),
        any::<u32>().prop_map(Message::Have),
        proptest::collection::vec(any::<u8>(), 0..128).prop_map(Message::Bitfield),
        arb_block_ref().prop_map(Message::Request),
        arb_block_ref().prop_map(Message::Cancel),
        (
            arb_block_ref(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(mut b, data)| {
                b.length = data.len() as u32;
                Message::Piece {
                    block: b,
                    data: Bytes::from(data),
                }
            }),
        any::<u16>().prop_map(Message::Port),
    ]
}

proptest! {
    // ------------------------------------------------------------------
    // Bencode
    // ------------------------------------------------------------------

    /// encode ∘ decode is the identity on every value tree.
    #[test]
    fn bencode_roundtrip(v in arb_bencode_value()) {
        let encoded = v.encode();
        let decoded = bencode::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, v);
    }

    /// The decoder never panics on arbitrary bytes, and whenever it
    /// succeeds, re-encoding gives back the identical input (canonical
    /// form is unique).
    #[test]
    fn bencode_decoder_total_and_canonical(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(v) = bencode::decode(&data) {
            prop_assert_eq!(v.encode(), data);
        }
    }

    // ------------------------------------------------------------------
    // SHA-1
    // ------------------------------------------------------------------

    /// Incremental hashing over arbitrary chunk splits equals one-shot.
    #[test]
    fn sha1_split_invariance(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha1(&data));
    }

    // ------------------------------------------------------------------
    // Peer wire messages
    // ------------------------------------------------------------------

    /// Every message round-trips through the codec, in one feed or many.
    #[test]
    fn message_roundtrip(msgs in proptest::collection::vec(arb_message(), 1..8), chunk in 1usize..64) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&m.encode_to_vec());
        }
        let mut dec = Decoder::default();
        let mut out = Vec::new();
        for part in stream.chunks(chunk) {
            dec.feed(part);
            while let Some(m) = dec.next_message().unwrap() {
                out.push(m);
            }
        }
        prop_assert_eq!(out, msgs);
    }

    /// The decoder never panics on arbitrary garbage.
    #[test]
    fn decoder_is_total(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = Decoder::default();
        dec.feed(&data);
        while let Ok(Some(_)) = dec.next_message() {}
    }

    // ------------------------------------------------------------------
    // Handshake / tracker
    // ------------------------------------------------------------------

    /// Handshakes round-trip for arbitrary info-hashes and peer IDs.
    #[test]
    fn handshake_roundtrip(hash in any::<[u8; 20]>(), id in any::<[u8; 20]>()) {
        let hs = Handshake::new(hash, PeerId(id));
        prop_assert_eq!(Handshake::decode(&hs.encode()).unwrap(), hs);
    }

    /// Compact announce responses round-trip for arbitrary peer lists.
    #[test]
    fn tracker_compact_roundtrip(
        interval in 0u32..100_000,
        complete in 0u32..100_000,
        incomplete in 0u32..100_000,
        peers in proptest::collection::vec((any::<u32>(), any::<u16>()), 0..60)
    ) {
        let resp = AnnounceResponse {
            interval,
            complete,
            incomplete,
            peers: peers.into_iter().map(|(ip, port)| PeerEntry { ip: IpAddr(ip), port }).collect(),
        };
        let enc = resp.encode_compact();
        prop_assert_eq!(AnnounceResponse::decode_compact(&enc).unwrap(), resp);
    }

    // ------------------------------------------------------------------
    // Bitfield / availability
    // ------------------------------------------------------------------

    /// Bitfield wire encoding round-trips for arbitrary piece sets.
    #[test]
    fn bitfield_wire_roundtrip(len in 1u32..500, ones in proptest::collection::vec(any::<u32>(), 0..64)) {
        let mut bf = Bitfield::new(len);
        for o in ones {
            bf.set(o % len);
        }
        let wire = bf.to_wire();
        prop_assert_eq!(Bitfield::from_wire(&wire, len), Some(bf));
    }

    /// count_ones always equals the number of set indices.
    #[test]
    fn bitfield_popcount(len in 1u32..300, ones in proptest::collection::vec(any::<u32>(), 0..64)) {
        let mut bf = Bitfield::new(len);
        let mut set = std::collections::HashSet::new();
        for o in ones {
            let i = o % len;
            bf.set(i);
            set.insert(i);
        }
        prop_assert_eq!(bf.count_ones() as usize, set.len());
        prop_assert_eq!(bf.iter_ones().count(), set.len());
    }

    /// The interest relation is exactly "has a piece I lack": it agrees
    /// with the set-difference definition on arbitrary bitfields.
    #[test]
    fn interest_matches_set_difference(
        len in 1u32..200,
        a_ones in proptest::collection::vec(any::<u32>(), 0..64),
        b_ones in proptest::collection::vec(any::<u32>(), 0..64)
    ) {
        let mut a = Bitfield::new(len);
        let mut b = Bitfield::new(len);
        for o in a_ones { a.set(o % len); }
        for o in b_ones { b.set(o % len); }
        let expected = b.iter_ones().any(|i| !a.get(i));
        prop_assert_eq!(a.is_interested_in(&b), expected);
    }

    /// Availability counts match a naive recount after arbitrary
    /// add/remove/have sequences.
    #[test]
    fn availability_matches_recount(
        len in 1u32..100,
        peers in proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..32), 1..8),
        haves in proptest::collection::vec(any::<u32>(), 0..32),
        remove_mask in proptest::collection::vec(any::<bool>(), 1..8)
    ) {
        let mut av = Availability::new(len);
        let mut naive = vec![0u32; len as usize];
        let bitfields: Vec<Bitfield> = peers
            .iter()
            .map(|ones| {
                let mut bf = Bitfield::new(len);
                for o in ones {
                    bf.set(o % len);
                }
                bf
            })
            .collect();
        for bf in &bitfields {
            av.add_peer(bf);
            for i in bf.iter_ones() {
                naive[i as usize] += 1;
            }
        }
        for h in haves {
            av.add_have(h % len);
            naive[(h % len) as usize] += 1;
        }
        for (bf, &remove) in bitfields.iter().zip(remove_mask.iter()) {
            if remove {
                av.remove_peer(bf);
                for i in bf.iter_ones() {
                    naive[i as usize] -= 1;
                }
            }
        }
        for (i, &expected) in naive.iter().enumerate() {
            prop_assert_eq!(av.count(i as u32), expected);
        }
        let min = naive.iter().copied().min().unwrap_or(0);
        prop_assert_eq!(av.min_count(), min);
        prop_assert_eq!(
            av.rarest_set_size() as usize,
            naive.iter().filter(|&&c| c == min).count()
        );
    }
}
