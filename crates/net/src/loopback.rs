//! End-to-end loopback swarms: N engines, N threads, real TCP.
//!
//! Where `bt-sim` multiplexes every peer through one deterministic event
//! queue, this harness gives each peer its own [`NetRuntime`] thread and
//! lets the kernel's loopback stack carry the bytes. The same engines,
//! the same wire format, the same traces — but with genuine concurrency,
//! partial reads, and connection races.

use crate::clock::AccelClock;
use crate::runtime::{peer_ip, NetConfig, NetRuntime, NetStats};
use crate::tracker::LoopbackTracker;
use bt_core::{Config, DataMode, EngineBuilder};
use bt_instrument::{Trace, TraceMeta};
use bt_piece::{Bitfield, Geometry};
use bt_wire::metainfo::SyntheticContent;
use bt_wire::peer_id::{ClientKind, PeerId};
use bt_wire::time::Instant;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Parameters for one loopback swarm run.
#[derive(Debug, Clone)]
pub struct LoopbackSpec {
    /// Peers that start with the full content.
    pub seeds: usize,
    /// Peers that start empty.
    pub leechers: usize,
    /// Content length in bytes.
    pub total_len: u64,
    /// Piece length in bytes.
    pub piece_len: u32,
    /// Seed for content generation and per-engine RNGs.
    pub seed: u64,
    /// Protocol configuration shared by every peer.
    pub config: Config,
    /// Transport configuration shared by every peer.
    pub net: NetConfig,
    /// Virtual-clock acceleration (1000 ⇒ 1 ms wall = 1 s virtual).
    pub accel: u64,
    /// Wall-clock budget; the run stops early once every leecher
    /// completes.
    pub max_wall: std::time::Duration,
    /// Attach a trace recorder to every peer.
    pub record: bool,
    /// Shared telemetry registry; every peer registers its instruments
    /// here under the label `peer<i>`. `None` leaves each runtime on a
    /// private wall-clock registry.
    pub metrics: Option<bt_obs::Registry>,
    /// Shared span profiler; every runtime (and its engine) records
    /// spans into it, giving a swarm-wide wall-clock profile. `None`
    /// disables span recording.
    pub profiler: Option<bt_obs::Profiler>,
}

impl Default for LoopbackSpec {
    fn default() -> LoopbackSpec {
        LoopbackSpec {
            seeds: 1,
            leechers: 3,
            // 64 pieces of 32 KiB (two blocks each): 2 MiB of content.
            total_len: 64 * 32 * 1024,
            piece_len: 32 * 1024,
            seed: 42,
            config: Config::default(),
            net: NetConfig::default(),
            accel: 1000,
            max_wall: std::time::Duration::from_secs(60),
            record: true,
            metrics: None,
            profiler: None,
        }
    }
}

/// What one peer looked like when its thread stopped.
#[derive(Debug)]
pub struct PeerOutcome {
    /// Whether the peer held every piece at shutdown.
    pub is_seed: bool,
    /// Pieces held at shutdown.
    pub pieces: u32,
    /// The peer's instrumented trace, if recording was on.
    pub trace: Option<Trace>,
    /// Transport counters.
    pub stats: NetStats,
}

/// The result of [`run_loopback_swarm`].
pub struct LoopbackResult {
    /// Per-peer outcomes, seeds first, then leechers in spawn order.
    pub outcomes: Vec<PeerOutcome>,
    /// Leechers that reached seed state before shutdown.
    pub completed_leechers: usize,
    /// `Started` announces the tracker saw.
    pub tracker_started: u64,
    /// `Completed` announces the tracker saw.
    pub tracker_completed: u64,
    /// Wall-clock time the run took.
    pub wall_elapsed: std::time::Duration,
    /// The synthetic content the swarm shared.
    pub content: Arc<SyntheticContent>,
}

/// Run a full swarm over loopback TCP: bind and register every listener,
/// spawn one runtime thread per peer (leechers staggered so announces
/// are ordered), and stop once every leecher completes or the wall
/// budget runs out.
pub fn run_loopback_swarm(spec: LoopbackSpec) -> std::io::Result<LoopbackResult> {
    let content = Arc::new(SyntheticContent::generate(
        "net-loopback",
        spec.seed,
        spec.total_len,
        spec.piece_len,
    ));
    let geometry = Geometry::from(&content.metainfo);
    let info_hash = content.metainfo.info_hash;
    let tracker = Arc::new(LoopbackTracker::new());
    let clock = AccelClock::new(spec.accel);
    let n = spec.seeds + spec.leechers;

    // Bind and register every listener before any thread starts, so the
    // tracker can resolve every peer no matter the scheduling order.
    let mut runtimes = Vec::with_capacity(n);
    for i in 0..n {
        // Step by two: a historical workaround for `PeerId::new` or-ing
        // its suffix with 1 (adjacent even/odd suffixes collided). The
        // mixer no longer collides, but the stride is kept so existing
        // golden fingerprints stay put.
        let peer_id = PeerId::new(
            ClientKind::Mainline402,
            spec.seed.wrapping_mul(2).wrapping_add(2 * i as u64),
        );
        let ip = peer_ip(&peer_id);
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0))?;
        tracker.register(ip, listener.local_addr()?);
        let is_seed = i < spec.seeds;
        let mut builder = EngineBuilder::new(geometry, info_hash, peer_id)
            .config(spec.config.clone())
            .data(DataMode::Real(content.clone()))
            .ip(ip)
            .rng_seed(spec.seed.wrapping_mul(31).wrapping_add(i as u64));
        if is_seed {
            builder = builder.initial_pieces(Bitfield::full(geometry.num_pieces()));
        }
        if spec.record {
            builder = builder.recorder(TraceMeta {
                torrent: "net-loopback".to_owned(),
                torrent_id: 0,
                num_pieces: geometry.num_pieces(),
                num_blocks: geometry.total_blocks(),
                initial_seeds: spec.seeds as u32,
                initial_leechers: spec.leechers as u32,
                session_end: Instant::ZERO, // patched at shutdown
                seed_at: None,
            });
        }
        let engine = builder.build();
        let mut net_cfg = spec.net.clone();
        if let Some(registry) = &spec.metrics {
            net_cfg.metrics = Some(registry.clone());
        }
        if let Some(profiler) = &spec.profiler {
            net_cfg.profiler = Some(profiler.clone());
        }
        net_cfg.metrics_label = format!("peer{i}");
        runtimes.push(NetRuntime::new(
            engine,
            DataMode::Real(content.clone()),
            listener,
            tracker.clone(),
            clock,
            net_cfg,
        )?);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicUsize::new(0));
    let started_wall = std::time::Instant::now();
    let handles: Vec<_> = runtimes
        .into_iter()
        .enumerate()
        .map(|(i, mut rt)| {
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            let is_seed = i < spec.seeds;
            let max_wall = spec.max_wall;
            std::thread::spawn(move || {
                // Stagger starts so each peer's `Started` announce sees
                // every earlier peer: dials then flow newer → older,
                // which avoids most simultaneous cross-connections.
                std::thread::sleep(std::time::Duration::from_millis(10 * i as u64));
                let stats = rt.run(&stop, max_wall, (!is_seed).then_some(&*completed));
                let end = rt.now();
                let mut trace = rt.engine_mut().take_trace();
                if let Some(tr) = trace.as_mut() {
                    tr.meta.session_end = end;
                }
                PeerOutcome {
                    is_seed: rt.engine().is_seed(),
                    pieces: rt.engine().num_pieces_have(),
                    trace,
                    stats,
                }
            })
        })
        .collect();

    // Wait for every leecher to complete (or the wall budget), linger
    // briefly so final have/not-interested traffic lands in the traces,
    // then stop all threads.
    while completed.load(Ordering::SeqCst) < spec.leechers && started_wall.elapsed() < spec.max_wall
    {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, Ordering::SeqCst);

    let outcomes: Vec<PeerOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("peer thread panicked"))
        .collect();
    let completed_leechers = outcomes
        .iter()
        .skip(spec.seeds)
        .filter(|o| o.is_seed)
        .count();
    Ok(LoopbackResult {
        completed_leechers,
        tracker_started: tracker.started(),
        tracker_completed: tracker.completed(),
        wall_elapsed: started_wall.elapsed(),
        outcomes,
        content,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke test: a tiny two-peer swarm completes over real sockets.
    #[test]
    fn seed_and_leecher_complete_over_loopback() {
        let spec = LoopbackSpec {
            seeds: 1,
            leechers: 1,
            total_len: 8 * 32 * 1024,
            max_wall: std::time::Duration::from_secs(30),
            ..LoopbackSpec::default()
        };
        let result = run_loopback_swarm(spec).expect("swarm runs");
        assert_eq!(result.completed_leechers, 1, "leecher must finish");
        assert_eq!(result.tracker_started, 2);
        assert!(result.tracker_completed >= 1);
        for o in &result.outcomes {
            assert_eq!(o.pieces, 8);
        }
    }
}
