//! A tiny non-blocking `GET /metrics` HTTP listener.
//!
//! Serves the Prometheus text exposition of a [`bt_obs::Registry`]
//! snapshot ([`bt_obs::to_prometheus`]) so a live `--net` run can be
//! scraped with `curl` or a real Prometheus. Deliberately minimal and
//! dependency-free, in the style of the [`crate::runtime`] poll loop:
//! a non-blocking `TcpListener` plus a [`MetricsServer::poll`] pass the
//! caller pumps from any thread. One snapshot is rendered per request;
//! requests are parsed just enough to route `GET /metrics` and answer
//! everything else with 404.

use bt_obs::{to_prometheus, Registry};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Most bytes of request head we buffer before answering 400.
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// One accepted connection working through request → response.
struct HttpConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    written: usize,
    responding: bool,
    deadline: std::time::Instant,
}

/// The `/metrics` listener; see the [module docs](self).
pub struct MetricsServer {
    listener: TcpListener,
    registry: Registry,
    conns: Vec<HttpConn>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9090"`, port 0 for ephemeral) and
    /// serve snapshots of `registry`.
    pub fn bind(addr: &str, registry: Registry) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(MetricsServer {
            listener,
            registry,
            conns: Vec::new(),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// One non-blocking pass: accept waiting connections, read request
    /// heads, write pending responses. Returns `true` if any byte
    /// moved. Call this from a polling thread (a few ms apart is
    /// plenty for a scrape endpoint).
    pub fn poll(&mut self) -> bool {
        let mut progressed = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        self.conns.push(HttpConn {
                            stream,
                            inbuf: Vec::with_capacity(256),
                            outbuf: Vec::new(),
                            written: 0,
                            responding: false,
                            deadline: std::time::Instant::now()
                                + std::time::Duration::from_secs(10),
                        });
                        progressed = true;
                    }
                }
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        let now = std::time::Instant::now();
        let registry = self.registry.clone();
        self.conns.retain_mut(|c| {
            if now >= c.deadline {
                return false;
            }
            if !c.responding {
                match pump_request(c) {
                    Pump::Progress => progressed = true,
                    Pump::Idle => {}
                    Pump::Dead => return false,
                }
                if !c.responding && request_head_complete(&c.inbuf) {
                    c.outbuf = respond(&c.inbuf, &registry);
                    c.responding = true;
                }
            }
            if c.responding {
                loop {
                    if c.written == c.outbuf.len() {
                        // Response fully flushed; close (Connection: close).
                        return false;
                    }
                    match c.stream.write(&c.outbuf[c.written..]) {
                        Ok(0) => return false,
                        Ok(n) => {
                            c.written += n;
                            progressed = true;
                        }
                        Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => return false,
                    }
                }
            }
            true
        });
        progressed
    }
}

enum Pump {
    Progress,
    Idle,
    Dead,
}

/// Read whatever request bytes are available; cap head size.
fn pump_request(c: &mut HttpConn) -> Pump {
    let mut buf = [0u8; 1024];
    let mut got = false;
    loop {
        match c.stream.read(&mut buf) {
            Ok(0) => return Pump::Dead,
            Ok(n) => {
                c.inbuf.extend_from_slice(&buf[..n]);
                got = true;
                if c.inbuf.len() > MAX_REQUEST_HEAD {
                    return Pump::Dead;
                }
            }
            Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Pump::Dead,
        }
    }
    if got {
        Pump::Progress
    } else {
        Pump::Idle
    }
}

fn request_head_complete(inbuf: &[u8]) -> bool {
    inbuf.windows(4).any(|w| w == b"\r\n\r\n")
}

/// Route the request: `GET /metrics` gets the exposition, anything
/// else 404, an unparsable request line 400.
fn respond(inbuf: &[u8], registry: &Registry) -> Vec<u8> {
    let head = String::from_utf8_lossy(inbuf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    match (method, path) {
        ("GET", "/metrics") => {
            let body = to_prometheus(&registry.snapshot());
            http_response(
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                body.as_bytes(),
            )
        }
        ("GET", _) => http_response("404 Not Found", "text/plain", b"not found\n"),
        _ => http_response("400 Bad Request", "text/plain", b"bad request\n"),
    }
}

fn http_response(status: &str, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut body = String::new();
        // Skip headers, then read the body to EOF (Connection: close).
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
        }
        reader.read_to_string(&mut body).unwrap();
        (status.trim().to_string(), body)
    }

    fn serve_one(server: &mut MetricsServer) {
        // Pump until the connection is fully answered and closed.
        for _ in 0..500 {
            server.poll();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn serves_prometheus_exposition() {
        let registry = Registry::new_manual();
        registry.counter("net.bytes_in").add(42);
        registry
            .histogram("core.choke_round_us", bt_obs::buckets::LATENCY_US)
            .observe(7);
        let mut server = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || get(addr, "/metrics"));
        serve_one(&mut server);
        let (status, body) = handle.join().unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("# TYPE net_bytes_in counter"));
        assert!(body.contains("net_bytes_in 42"));
        assert!(body.contains("core_choke_round_us_bucket{le=\"10\"} 1"));
        // Parseable: every non-comment line is `name{labels} value`.
        for line in body.lines().filter(|l| !l.starts_with('#')) {
            let mut it = line.rsplitn(2, ' ');
            let value = it.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparseable line: {line}");
        }
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_400() {
        let registry = Registry::new_manual();
        let mut server = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || get(addr, "/nope"));
        serve_one(&mut server);
        let (status, _) = handle.join().unwrap();
        assert_eq!(status, "HTTP/1.1 404 Not Found");

        let handle = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(stream, "BREW /coffee HTTP/1.1\r\n\r\n").unwrap();
            let mut reader = BufReader::new(stream);
            let mut status = String::new();
            reader.read_line(&mut status).unwrap();
            status.trim().to_string()
        });
        serve_one(&mut server);
        assert_eq!(handle.join().unwrap(), "HTTP/1.1 400 Bad Request");
    }
}
