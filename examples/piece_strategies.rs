//! Piece selection strategies head to head on the same single-seed swarm:
//! rarest first (BitTorrent), uniform random, sequential, and the
//! global-knowledge oracle. Reproduces the §IV-A argument at a glance.
//!
//! ```sh
//! cargo run --release --example piece_strategies
//! ```

use bt_repro::analysis::{entropy, ReplicationSeries};
use bt_repro::piece::PickerKind;
use bt_repro::sim::{BehaviorProfile, CapacityClass, Role, Swarm, SwarmSpec};
use bt_repro::wire::peer_id::ClientKind;
use bt_repro::wire::time::Duration;

fn run(picker: PickerKind) -> (usize, f64, f64) {
    let cfg = bt_repro::core::Config {
        picker,
        ..Default::default()
    };
    let mut peers = vec![BehaviorProfile::seed()];
    for i in 0..40 {
        peers.push(BehaviorProfile {
            role: Role::Leecher,
            client: ClientKind::Mainline402,
            capacity: CapacityClass::Dsl,
            join_at: Duration::from_secs(i),
            seed_linger: Some(Duration::from_secs(900)),
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
    }
    let spec = SwarmSpec {
        seed: 99,
        total_len: 64 * 256 * 1024,
        piece_len: 256 * 1024,
        duration: Duration::from_secs(4 * 3600),
        base_config: cfg,
        peers,
        local: Some(1),
        available_fraction: 0.0, // startup: the picker's hardest regime
        ..SwarmSpec::default()
    };
    let result = Swarm::new(spec).run();
    let trace = result.trace.expect("instrumented");
    let ent = entropy(&trace);
    let series = ReplicationSeries::from_trace(&trace);
    (
        result.completed_peers,
        ent.local_in_remote.p50,
        series.missing_piece_fraction(),
    )
}

fn main() {
    println!("single 20 kB/s seed, 40 DSL leechers, 16 MB content, startup phase\n");
    println!(
        "{:<14} {:>10} {:>12} {:>14}",
        "picker", "completed", "a/b median", "missing-frac"
    );
    println!("{}", "-".repeat(54));
    let mut completions = std::collections::HashMap::new();
    for picker in [
        PickerKind::RarestFirst,
        PickerKind::GlobalRarest,
        PickerKind::Random,
        PickerKind::Sequential,
    ] {
        let (done, ab, missing) = run(picker);
        println!(
            "{:<14} {:>10} {:>12.2} {:>14.2}",
            format!("{picker:?}"),
            done,
            ab,
            missing
        );
        completions.insert(format!("{picker:?}"), done);
    }
    println!(
        "\nrarest first keeps pace with the global-knowledge oracle and beats\n\
         rarity-blind orderings — the paper's case against replacing it."
    );
    assert!(
        completions["RarestFirst"] >= completions["Sequential"],
        "rarest first must not lose to sequential"
    );
}
