//! Virtual time.
//!
//! The whole reproduction runs on a simulated clock so that 8-hour torrent
//! sessions replay deterministically in seconds. [`Instant`] is a
//! microsecond count since simulation start; [`Duration`] a microsecond
//! span. They live in `bt-wire` because every other crate (choke timers,
//! trace records, the simulator's event queue) shares them.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Instant(pub u64);

/// A span of virtual time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Instant {
    /// The simulation epoch.
    pub const ZERO: Instant = Instant(0);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Instant {
        Instant(secs * 1_000_000)
    }

    /// Seconds since the epoch, as a float (for analysis output).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whole seconds since the epoch (truncating).
    pub fn as_secs(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Time elapsed since `earlier`; zero if `earlier` is later.
    pub fn saturating_since(&self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Duration {
        Duration(secs * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// Construct from a float of seconds (truncates below a microsecond).
    pub fn from_secs_f64(secs: f64) -> Duration {
        Duration((secs * 1e6).max(0.0) as u64)
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply by an integer factor.
    pub fn mul(&self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl std::fmt::Display for Instant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Instant::from_secs(10) + Duration::from_millis(500);
        assert_eq!(t.0, 10_500_000);
        assert_eq!((t - Instant::from_secs(10)).as_secs_f64(), 0.5);
        assert_eq!(t.as_secs(), 10);
    }

    #[test]
    fn saturating_since() {
        let a = Instant::from_secs(5);
        let b = Instant::from_secs(7);
        assert_eq!(b.saturating_since(a), Duration::from_secs(2));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn float_conversions() {
        assert_eq!(Duration::from_secs_f64(1.5).0, 1_500_000);
        assert_eq!(Duration::from_secs_f64(-3.0).0, 0);
        assert!((Instant::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }
}
