//! Basic statistics: empirical CDFs and percentiles.
//!
//! The paper reports 20th/median/80th percentiles (figure 1) and CDFs of
//! interarrival times (figures 7 and 8); these helpers compute both.

use serde::{Deserialize, Serialize};

/// Percentile summary used by figure 1's vertical bars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// 20th percentile (bottom of the bar).
    pub p20: f64,
    /// Median (the circle).
    pub p50: f64,
    /// 80th percentile (top of the bar).
    pub p80: f64,
}

/// Linear-interpolation percentile of `sorted` (must be ascending).
/// `q` in [0, 1]. Returns `NaN` on empty input.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Compute figure-1 style percentiles of `values` (unsorted input).
pub fn percentiles(values: &[f64]) -> Percentiles {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Percentiles {
        p20: percentile_sorted(&v, 0.20),
        p50: percentile_sorted(&v, 0.50),
        p80: percentile_sorted(&v, 0.80),
    }
}

/// An empirical CDF over a sample.
///
/// ```
/// use bt_analysis::Cdf;
/// let cdf = Cdf::new(vec![1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(cdf.at(2.0), 0.75);   // P(X ≤ 2)
/// assert_eq!(cdf.quantile(1.0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from a sample (need not be sorted; non-finite values dropped).
    pub fn new(mut values: Vec<f64>) -> Cdf {
        values.retain(|x| x.is_finite());
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: values }
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile), `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q)
    }

    /// `n` evenly spaced (value, probability) points for plotting.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1).max(1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// Median convenience accessor.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

/// Mean of a slice; `NaN` when empty.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_sample() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = percentiles(&v);
        assert!((p.p20 - 20.8).abs() < 1e-9);
        assert!((p.p50 - 50.5).abs() < 1e-9);
        assert!((p.p80 - 80.2).abs() < 1e-9);
    }

    #[test]
    fn percentile_edge_cases() {
        assert!(percentile_sorted(&[], 0.5).is_nan());
        assert_eq!(percentile_sorted(&[3.0], 0.99), 3.0);
        assert_eq!(percentile_sorted(&[1.0, 2.0], 0.0), 1.0);
        assert_eq!(percentile_sorted(&[1.0, 2.0], 1.0), 2.0);
    }

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.at(0.5), 0.0);
        assert_eq!(cdf.at(2.0), 0.75);
        assert_eq!(cdf.at(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 3.0);
    }

    #[test]
    fn cdf_filters_non_finite() {
        let cdf = Cdf::new(vec![1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn cdf_points_monotone() {
        let cdf = Cdf::new((0..50).map(f64::from).collect());
        let pts = cdf.points(11);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn mean_works() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
    }
}
