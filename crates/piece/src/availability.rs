//! Piece availability within the local peer set.
//!
//! §II-C.1: "Each peer maintains a list of the number of copies of each
//! piece in its peer set. It uses this information to define a rarest
//! pieces set. Let m be the number of copies of the rarest piece, then the
//! index of each piece with m copies in the peer set is added to the rarest
//! pieces set. The rarest pieces set of a peer is updated each time a copy
//! of a piece is added to or removed from its peer set."
//!
//! [`Availability`] maintains those counts incrementally from bitfield /
//! have / disconnect events, and exposes the *rarest pieces set* and the
//! min/mean/max statistics that figures 2–4 and 6 of the paper plot.

use crate::bitfield::Bitfield;
use serde::{Deserialize, Serialize};

/// Per-piece copy counts over the current peer set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Availability {
    counts: Vec<u32>,
}

/// Snapshot statistics over the per-piece copy counts (figure 2/4 series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityStats {
    /// Copies of the least replicated piece.
    pub min: u32,
    /// Mean copies over all pieces.
    pub mean: f64,
    /// Copies of the most replicated piece.
    pub max: u32,
}

impl Availability {
    /// Zero counts for `num_pieces` pieces.
    pub fn new(num_pieces: u32) -> Availability {
        Availability {
            counts: vec![0; num_pieces as usize],
        }
    }

    /// Number of pieces tracked.
    pub fn num_pieces(&self) -> u32 {
        self.counts.len() as u32
    }

    /// Copies of piece `index` in the peer set.
    pub fn count(&self, index: u32) -> u32 {
        self.counts[index as usize]
    }

    /// A peer joined the peer set with bitfield `bf`.
    pub fn add_peer(&mut self, bf: &Bitfield) {
        debug_assert_eq!(bf.len(), self.num_pieces());
        for i in bf.iter_ones() {
            self.counts[i as usize] += 1;
        }
    }

    /// A peer left the peer set; remove its contribution.
    pub fn remove_peer(&mut self, bf: &Bitfield) {
        debug_assert_eq!(bf.len(), self.num_pieces());
        for i in bf.iter_ones() {
            let c = &mut self.counts[i as usize];
            debug_assert!(*c > 0, "removing peer with piece {i} not counted");
            *c = c.saturating_sub(1);
        }
    }

    /// A peer in the set announced a new piece (`have` message).
    pub fn add_have(&mut self, index: u32) {
        self.counts[index as usize] += 1;
    }

    /// Copies of the rarest piece (`m` in the paper's definition).
    pub fn min_count(&self) -> u32 {
        self.counts.iter().copied().min().unwrap_or(0)
    }

    /// The rarest pieces set: all pieces with `m` copies.
    pub fn rarest_set(&self) -> Vec<u32> {
        let m = self.min_count();
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == m)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Size of the rarest pieces set (figure 3/6 series).
    pub fn rarest_set_size(&self) -> u32 {
        let m = self.min_count();
        self.counts.iter().filter(|&&c| c == m).count() as u32
    }

    /// The rarest pieces set restricted to `candidates` (pieces the local
    /// peer could actually request). Rarity is still computed over the
    /// restricted set: among the candidates, those with the fewest copies.
    pub fn rarest_among<I: IntoIterator<Item = u32>>(&self, candidates: I) -> Vec<u32> {
        let mut best = u32::MAX;
        let mut out = Vec::new();
        for i in candidates {
            let c = self.counts[i as usize];
            match c.cmp(&best) {
                std::cmp::Ordering::Less => {
                    best = c;
                    out.clear();
                    out.push(i);
                }
                std::cmp::Ordering::Equal => out.push(i),
                std::cmp::Ordering::Greater => {}
            }
        }
        out
    }

    /// Min/mean/max copies, the series plotted in figures 2 and 4.
    pub fn stats(&self) -> AvailabilityStats {
        if self.counts.is_empty() {
            return AvailabilityStats {
                min: 0,
                mean: 0.0,
                max: 0,
            };
        }
        let min = *self.counts.iter().min().unwrap();
        let max = *self.counts.iter().max().unwrap();
        let mean =
            self.counts.iter().map(|&c| f64::from(c)).sum::<f64>() / self.counts.len() as f64;
        AvailabilityStats { min, mean, max }
    }

    /// True when at least one piece has zero copies in the peer set — the
    /// local signature of a torrent in *transient state* (§IV-A.2).
    pub fn has_missing_piece(&self) -> bool {
        self.counts.contains(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(len: u32, ones: &[u32]) -> Bitfield {
        let mut b = Bitfield::new(len);
        for &i in ones {
            b.set(i);
        }
        b
    }

    #[test]
    fn add_remove_peer_is_inverse() {
        let mut av = Availability::new(8);
        let peer = bf(8, &[0, 3, 7]);
        av.add_peer(&peer);
        assert_eq!(av.count(0), 1);
        assert_eq!(av.count(1), 0);
        av.remove_peer(&peer);
        assert_eq!(av.stats().max, 0);
    }

    #[test]
    fn have_increments() {
        let mut av = Availability::new(4);
        av.add_have(2);
        av.add_have(2);
        assert_eq!(av.count(2), 2);
    }

    #[test]
    fn rarest_set_tracks_minimum() {
        let mut av = Availability::new(4);
        av.add_peer(&bf(4, &[0, 1]));
        av.add_peer(&bf(4, &[0]));
        // counts: [2,1,0,0] → m = 0, rarest = {2,3}
        assert_eq!(av.min_count(), 0);
        assert_eq!(av.rarest_set(), vec![2, 3]);
        assert_eq!(av.rarest_set_size(), 2);
        av.add_have(2);
        av.add_have(3);
        // counts: [2,1,1,1] → m = 1, rarest = {1,2,3}
        assert_eq!(av.rarest_set(), vec![1, 2, 3]);
    }

    #[test]
    fn rarest_among_restricts_candidates() {
        let mut av = Availability::new(5);
        av.add_peer(&bf(5, &[0, 1, 2]));
        av.add_peer(&bf(5, &[0, 1]));
        av.add_peer(&bf(5, &[0]));
        // counts: [3,2,1,0,0]
        assert_eq!(av.rarest_among([0, 1, 2]), vec![2]);
        assert_eq!(av.rarest_among([0, 1]), vec![1]);
        assert_eq!(av.rarest_among([3, 4]), vec![3, 4]);
        assert_eq!(av.rarest_among(std::iter::empty()), Vec::<u32>::new());
    }

    #[test]
    fn stats_and_transient_signature() {
        let mut av = Availability::new(3);
        assert!(av.has_missing_piece());
        av.add_peer(&bf(3, &[0, 1, 2]));
        assert!(!av.has_missing_piece());
        av.add_peer(&bf(3, &[0]));
        let s = av.stats();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.mean - 4.0 / 3.0).abs() < 1e-12);
    }
}
