//! `benchrun` — the fixed performance suite behind `BENCH_*.json`.
//!
//! ```text
//! benchrun [--quick] [--out FILE] [--compare baseline.json]
//! ```
//!
//! Runs five workloads and writes one machine-readable JSON report
//! (default `BENCH_PR10.json`, for the repo's perf trajectory):
//!
//! 1. **Simulator throughput** — the Table I sweep at seed 42 on 1 and
//!    8 workers (`--quick`: a 3-torrent subset), reported as events/sec;
//! 2. **Mega-swarm throughput** — the `flash_crowd_10k` scenario
//!    (`--quick`: 2k peers), reported as events/sec — the headline the
//!    bucketed availability index, calendar event queue, partitioned
//!    tracker, and pooled round state exist for. The same swarm then
//!    re-runs with the full observatory attached (metrics registry,
//!    time-series, health monitors); the extra wall time is the
//!    `obs_overhead_pct` headline, and every completion time and
//!    tracker tally must match the bare run — observation that perturbs
//!    the swarm's behaviour fails the suite. The crowd then re-runs
//!    with the causal tracer sampling at 1/64; the extra wall time is
//!    the `trace_overhead_pct` headline, and the run digest must match
//!    the bare run exactly — the tracer hashes ids and never draws
//!    from the swarm RNG. A further run routes the
//!    same crowd over the `asymmetric_dsl` full-duplex topology; the
//!    drop in per-event throughput versus the uniform run is the
//!    `link_model_overhead_pct` headline (event counts differ between
//!    models, so events/sec is the comparable unit, not wall time);
//! 3. **Transport throughput** — a loopback `--net` swarm over real
//!    TCP, reported as framed bytes/sec;
//! 4. **Microbenches** — wire encode/decode and the rarest-first pick
//!    at 1 400 and 100 000 pieces, run through the criterion shim's
//!    collection mode;
//! 5. **Self-profile** — a wall-profiled simulator run; the top-10
//!    self-time spans identify where the engine actually spends time.
//!
//! Alongside the report, per-stage span profiles land in
//! `<out stem>.profiles/` (`mega.json` from a wall-profiled flash-crowd
//! run, `sim.json` from stage 5) — the raw material `btstat diff` and
//! the compare path's attribution consume.
//!
//! `--compare FILE` re-reads a previous report, always prints the full
//! per-headline delta table (current value, baseline, delta), and exits
//! non-zero if any headline throughput regressed more than 15 %
//! (current < 0.85 × baseline). `*_overhead_pct` headlines are
//! lower-is-better: they regress when the overhead grows more than 15
//! percentage points over baseline. On failure, if the baseline has a
//! `.profiles/` directory next to it, the guilty spans are named:
//! per-span self-time deltas ranked by contribution to the shift
//! (`bt_stat::attribute`). Workloads are deterministic; wall
//! times are not — committed baselines should be relaxed (halved, and
//! the overhead ceiling raised) so slower CI machines pass.

use bt_obs::{Profiler, TimeSource};
use bt_piece::{Availability, Bitfield, PickContext, PickerKind};
use bt_sim::Swarm;
use bt_torrents::{build_swarm_spec, run_scenarios_parallel, table1, torrent, RunConfig};
use bt_wire::message::{BlockRef, Decoder, Message};
use bytes::Bytes;
use criterion::{black_box, BenchResult, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use std::collections::BTreeMap;

/// A headline regresses when it falls below this fraction of baseline.
const REGRESSION_FLOOR: f64 = 0.85;

/// `*_overhead_pct` headlines (lower is better) regress when they grow
/// more than this many percentage points over baseline.
const OVERHEAD_SLACK_POINTS: f64 = 15.0;

/// Build an object `Value` from literal key/value pairs.
fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn field<'v>(value: &'v Value, key: &str) -> Option<&'v Value> {
    match value {
        Value::Object(map) => map.get(key),
        _ => None,
    }
}

fn as_object(value: &Value) -> Option<&BTreeMap<String, Value>> {
    match value {
        Value::Object(map) => Some(map),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_str = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag_str("--out").unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let compare = flag_str("--compare");

    let (report, profiles) = run_suite(quick);
    let text = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out_path, text + "\n").unwrap_or_else(|e| {
        eprintln!("benchrun: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("report written   : {out_path}");

    // Per-stage profile artifacts next to the report: `btstat diff` and
    // the compare path's span attribution both read this layout.
    let profiles_dir = profiles_dir_for(&out_path);
    std::fs::create_dir_all(&profiles_dir).unwrap_or_else(|e| {
        eprintln!("benchrun: cannot create {profiles_dir}: {e}");
        std::process::exit(2);
    });
    for (stage, profile) in &profiles {
        let path = format!("{profiles_dir}/{stage}.json");
        std::fs::write(&path, profile.to_json()).unwrap_or_else(|e| {
            eprintln!("benchrun: cannot write {path}: {e}");
            std::process::exit(2);
        });
    }
    println!(
        "profiles written : {profiles_dir}/ ({} stages)",
        profiles.len()
    );

    if let Some(baseline_path) = compare {
        let regressions = compare_to_baseline(&report, &baseline_path);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("benchrun: REGRESSION {r}");
            }
            attribute_regression(&profiles, &baseline_path);
            std::process::exit(1);
        }
        println!("compare          : no headline regressed beyond 15% of {baseline_path}");
    }
}

/// `BENCH.json` → `BENCH.profiles`; extensionless paths just append.
fn profiles_dir_for(report_path: &str) -> String {
    format!("{}.profiles", report_path.trim_end_matches(".json"))
}

/// A compare just failed: name the guilty spans. For every stage whose
/// profile exists on both sides, rank the per-span self-time deltas by
/// contribution to the total shift. Missing or unreadable baseline
/// profiles degrade to a note, never an error — older baselines predate
/// the artifacts.
fn attribute_regression(profiles: &[(&'static str, bt_obs::Profile)], baseline_path: &str) {
    let base_dir = profiles_dir_for(baseline_path);
    for (stage, current) in profiles {
        let path = format!("{base_dir}/{stage}.json");
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("benchrun: no baseline profile at {path}; skipping span attribution");
            continue;
        };
        let Ok(base) = bt_obs::ProfileDoc::parse(&text) else {
            eprintln!("benchrun: unparsable baseline profile at {path}; skipping");
            continue;
        };
        let cur = bt_obs::ProfileDoc::parse(&current.to_json()).expect("own profile parses");
        let deltas = bt_stat::attribute(&base, &cur, 8);
        if deltas.is_empty() {
            continue;
        }
        eprintln!("benchrun: stage `{stage}` span attribution (self µs, baseline -> current):");
        for d in &deltas {
            eprintln!(
                "  {:<40} {:>10} -> {:>10}  ({:+} µs, {:.1}% of shift)",
                d.path, d.baseline_self_us, d.value_self_us, d.delta_us, d.share_pct
            );
        }
    }
}

fn run_suite(quick: bool) -> (Value, Vec<(&'static str, bt_obs::Profile)>) {
    let cfg = if quick {
        RunConfig::quick()
    } else {
        RunConfig::default()
    };
    let specs = if quick {
        vec![torrent(2), torrent(19), torrent(3)]
    } else {
        table1().to_vec()
    };

    // 1. Simulator throughput, 1 and 8 workers over the same workload.
    let mut sim = Vec::new();
    let mut sim_eps = [0.0f64; 2];
    for (slot, jobs) in [1usize, 8].into_iter().enumerate() {
        eprintln!(
            "[1/5] table I sweep: {} torrents, {jobs} job(s) ...",
            specs.len()
        );
        let t0 = std::time::Instant::now();
        let outcomes = run_scenarios_parallel(&cfg, &specs, jobs, |_| {});
        let wall = t0.elapsed().as_secs_f64();
        let events: u64 = outcomes.iter().map(|o| o.result.events_processed).sum();
        sim_eps[slot] = events as f64 / wall.max(1e-9);
        sim.push((
            format!("jobs{jobs}"),
            obj(vec![
                ("wall_secs", Value::Float(wall)),
                ("events", Value::PosInt(events)),
                ("torrents", Value::PosInt(outcomes.len() as u64)),
                ("events_per_sec", Value::Float(sim_eps[slot])),
            ]),
        ));
    }

    // 2. Mega-swarm throughput: one uninstrumented flash crowd at the
    // 10k-peer scale (2k under --quick), the workload the O(1) rarest
    // index, calendar queue, and pooled round state are sized for.
    let mega_peers = if quick { 2_000 } else { 10_000 };
    eprintln!("[2/5] mega flash crowd: {mega_peers} peers ...");
    let mega_opts = bt_torrents::PresetOptions {
        seed: cfg.seed,
        pieces: 8,
        duration: bt_wire::time::Duration::from_secs(900),
        ..Default::default()
    };
    let mega_spec = bt_torrents::scenarios::mega_flash_crowd(mega_peers, &mega_opts);
    let t0 = std::time::Instant::now();
    let mega = Swarm::new(mega_spec).run();
    let mega_wall = t0.elapsed().as_secs_f64();
    let mega_eps = mega.events_processed as f64 / mega_wall.max(1e-9);
    let mega_digest = format!("{:016x}", mega.digest());

    // The same flash crowd with the full observatory attached: what does
    // watching cost, and does it perturb the run? (It must not.)
    eprintln!("[2/5] mega flash crowd again, observatory on ...");
    let obs_spec = bt_torrents::scenarios::mega_flash_crowd(mega_peers, &mega_opts);
    let registry = bt_obs::Registry::new_manual();
    let store = bt_obs::SeriesStore::new(&registry);
    let t0 = std::time::Instant::now();
    let mega_obs = Swarm::new(obs_spec)
        .with_metrics(registry)
        .with_series(store)
        .with_health(Default::default())
        .run();
    let obs_wall = t0.elapsed().as_secs_f64();
    let obs_overhead_pct = (obs_wall - mega_wall) / mega_wall.max(1e-9) * 100.0;
    // Sampling adds `Ev::Sample` entries to the event count (this preset
    // has no instrumented local peer, so the bare run schedules none),
    // but must not change what the swarm *does*: every completion time
    // and tracker tally has to match the bare run exactly.
    if mega_obs.completion != mega.completion
        || mega_obs.tracker_started != mega.tracker_started
        || mega_obs.tracker_completed != mega.tracker_completed
    {
        eprintln!(
            "benchrun: observatory perturbed the swarm: {}/{} completions, {}/{} started, {}/{} completed announces",
            mega_obs.completed_peers,
            mega.completed_peers,
            mega_obs.tracker_started,
            mega.tracker_started,
            mega_obs.tracker_completed,
            mega.tracker_completed
        );
        std::process::exit(1);
    }

    // The same crowd with the causal tracer sampling at 1/64: the extra
    // wall time is the `trace_overhead_pct` headline. The tracer hashes
    // ids and never draws from the swarm RNG, so even the run digest —
    // the full deterministic outcome — must match the bare run.
    eprintln!("[2/5] mega flash crowd again, causal tracer at 1/64 ...");
    let trace_spec = bt_torrents::scenarios::mega_flash_crowd(mega_peers, &mega_opts);
    let tracer = bt_obs::Tracer::new(cfg.seed, 64);
    let t0 = std::time::Instant::now();
    let mega_traced = Swarm::new(trace_spec).with_trace(tracer.clone()).run();
    let trace_wall = t0.elapsed().as_secs_f64();
    let trace_overhead_pct = (trace_wall - mega_wall) / mega_wall.max(1e-9) * 100.0;
    tracer.flush_local();
    let trace_events = tracer.to_jsonl().lines().count() as u64;
    if format!("{:016x}", mega_traced.digest()) != mega_digest {
        eprintln!(
            "benchrun: causal tracer perturbed the swarm: digest {:016x} != {mega_digest}",
            mega_traced.digest()
        );
        std::process::exit(1);
    }

    // The same crowd again over the asymmetric_dsl full-duplex
    // topology: per-direction bandwidth caps, loss draws, and the
    // in-order watermark all sit on the hot delivery path, so the
    // per-event throughput drop is the cost of the link-model layer.
    // Event counts differ between network models (loss redeliveries,
    // different unchoke dynamics), so events/sec — not wall time — is
    // the comparable unit.
    eprintln!("[2/5] mega flash crowd again, asymmetric_dsl links ...");
    let wan_spec =
        bt_torrents::scenarios::wan_mega_flash_crowd(mega_peers, "asymmetric_dsl", &mega_opts);
    let t0 = std::time::Instant::now();
    let wan = Swarm::new(wan_spec).run();
    let wan_wall = t0.elapsed().as_secs_f64();
    let wan_eps = wan.events_processed as f64 / wan_wall.max(1e-9);
    let wan_digest = format!("{:016x}", wan.digest());
    let link_model_overhead_pct = (mega_eps - wan_eps) / mega_eps.max(1e-9) * 100.0;

    // One more crowd, wall-profiled, purely as an artifact: the
    // per-span self times behind the mega headline, for `btstat diff`
    // and compare-failure attribution. Untimed — profiling overhead
    // must not leak into any headline.
    eprintln!("[2/5] mega flash crowd again, wall-profiled (artifact only) ...");
    let prof_spec = bt_torrents::scenarios::mega_flash_crowd(mega_peers, &mega_opts);
    let mega_profile = Swarm::new(prof_spec)
        .with_profiler(Profiler::new(TimeSource::wall()))
        .run()
        .profile
        .expect("profiler attached");

    // 3. Loopback TCP throughput.
    eprintln!("[3/5] loopback net swarm ...");
    let pieces: u64 = if quick { 32 } else { 128 };
    let net_spec = bt_net::LoopbackSpec {
        seeds: 1,
        leechers: 2,
        total_len: pieces * 32 * 1024,
        record: false,
        ..bt_net::LoopbackSpec::default()
    };
    let leechers = net_spec.leechers;
    let net = bt_net::run_loopback_swarm(net_spec).unwrap_or_else(|e| {
        eprintln!("benchrun: net swarm failed: {e}");
        std::process::exit(1);
    });
    let net_bytes: u64 = net.outcomes.iter().map(|o| o.stats.bytes_in).sum();
    let net_wall = net.wall_elapsed.as_secs_f64();
    let net_bps = net_bytes as f64 / net_wall.max(1e-9);

    // 4. Microbenches through the collecting criterion driver.
    eprintln!("[4/5] microbenches ...");
    let micro = micro_benches(quick);
    let micro_rate = |group: &str, name: &str| {
        micro
            .iter()
            .find(|r| r.group == group && r.name == name)
            .map(|r| {
                r.bytes_per_sec()
                    .or_else(|| r.iters_per_sec())
                    .unwrap_or(0.0)
            })
            .unwrap_or(0.0)
    };

    // 5. Wall-profiled simulator run: where does the time actually go?
    eprintln!("[5/5] wall-profiled simulator run ...");
    let (swarm_spec, _) = build_swarm_spec(&torrent(3), &cfg);
    let profiler = Profiler::new(TimeSource::wall());
    let result = Swarm::new(swarm_spec).with_profiler(profiler).run();
    let profile = result.profile.expect("profiler attached");
    let top_spans: Vec<Value> = profile
        .top_self(10)
        .into_iter()
        .map(|(name, stat)| {
            obj(vec![
                ("name", Value::Str(name.to_string())),
                ("self_us", Value::PosInt(stat.self_us)),
                ("total_us", Value::PosInt(stat.total_us)),
                ("count", Value::PosInt(stat.count)),
            ])
        })
        .collect();

    let headlines = obj(vec![
        ("sim_events_per_sec_jobs1", Value::Float(sim_eps[0])),
        ("sim_events_per_sec_jobs8", Value::Float(sim_eps[1])),
        ("sim_events_per_sec_10k_peers", Value::Float(mega_eps)),
        ("obs_overhead_pct", Value::Float(obs_overhead_pct)),
        ("trace_overhead_pct", Value::Float(trace_overhead_pct)),
        (
            "link_model_overhead_pct",
            Value::Float(link_model_overhead_pct),
        ),
        ("net_bytes_per_sec", Value::Float(net_bps)),
        (
            "wire_encode_bytes_per_sec",
            Value::Float(micro_rate("wire", "encode_piece_16k")),
        ),
        (
            "wire_decode_bytes_per_sec",
            Value::Float(micro_rate("wire", "decode_piece_16k")),
        ),
        (
            "piece_picks_per_sec",
            Value::Float(micro_rate("piece", "rarest_pick_1400")),
        ),
        (
            "rarest_pick_100k",
            Value::Float(micro_rate("piece", "rarest_pick_100k")),
        ),
    ]);
    println!("headlines:");
    if let Some(map) = as_object(&headlines) {
        for (k, v) in map {
            println!("  {k:<28} {:.3e}", v.as_f64().unwrap_or(0.0));
        }
    }

    let report = obj(vec![
        ("schema", Value::Str("bt-repro-bench-v1".to_string())),
        ("quick", Value::Bool(quick)),
        ("seed", Value::PosInt(cfg.seed)),
        ("headlines", headlines),
        (
            "details",
            obj(vec![
                (
                    "sim",
                    Value::Object(sim.into_iter().collect::<BTreeMap<_, _>>()),
                ),
                (
                    "mega",
                    obj(vec![
                        ("peers", Value::PosInt(mega_peers as u64)),
                        ("wall_secs", Value::Float(mega_wall)),
                        ("obs_wall_secs", Value::Float(obs_wall)),
                        ("obs_overhead_pct", Value::Float(obs_overhead_pct)),
                        ("trace_wall_secs", Value::Float(trace_wall)),
                        ("trace_overhead_pct", Value::Float(trace_overhead_pct)),
                        ("trace_events", Value::PosInt(trace_events)),
                        ("events", Value::PosInt(mega.events_processed)),
                        (
                            "completed_peers",
                            Value::PosInt(mega.completed_peers as u64),
                        ),
                        ("digest", Value::Str(mega_digest)),
                        ("wan_topology", Value::Str("asymmetric_dsl".to_string())),
                        ("wan_wall_secs", Value::Float(wan_wall)),
                        ("wan_events", Value::PosInt(wan.events_processed)),
                        ("wan_events_per_sec", Value::Float(wan_eps)),
                        (
                            "wan_completed_peers",
                            Value::PosInt(wan.completed_peers as u64),
                        ),
                        ("wan_digest", Value::Str(wan_digest)),
                        (
                            "link_model_overhead_pct",
                            Value::Float(link_model_overhead_pct),
                        ),
                    ]),
                ),
                (
                    "net",
                    obj(vec![
                        ("wall_secs", Value::Float(net_wall)),
                        ("bytes_in", Value::PosInt(net_bytes)),
                        (
                            "completed_leechers",
                            Value::PosInt(net.completed_leechers as u64),
                        ),
                        ("leechers", Value::PosInt(leechers as u64)),
                    ]),
                ),
                (
                    "micro",
                    Value::Array(
                        micro
                            .iter()
                            .map(|r| {
                                obj(vec![
                                    ("group", Value::Str(r.group.clone())),
                                    ("name", Value::Str(r.name.clone())),
                                    ("ns_per_iter", Value::PosInt(r.ns_per_iter as u64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("top_self_spans", Value::Array(top_spans)),
            ]),
        ),
    ]);
    (report, vec![("mega", mega_profile), ("sim", profile)])
}

/// Wire-codec and piece-pick microbenches, timed by the shim.
fn micro_benches(quick: bool) -> Vec<BenchResult> {
    let samples = if quick { 300 } else { 3000 };
    let mut c = Criterion::collecting();

    let mut group = c.benchmark_group("wire");
    group.sample_size(samples);
    let piece_msg = Message::Piece {
        block: BlockRef {
            piece: 3,
            offset: 16384,
            length: 16384,
        },
        data: Bytes::from(vec![0xA5u8; 16384]),
    };
    let encoded = piece_msg.encode_to_vec();
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_piece_16k", |b| {
        b.iter(|| black_box(piece_msg.encode_to_vec()))
    });
    group.bench_function("decode_piece_16k", |b| {
        b.iter(|| {
            let mut dec = Decoder::default();
            dec.feed(&encoded);
            black_box(dec.next_message().unwrap())
        })
    });
    group.finish();

    let mut group = c.benchmark_group("piece");
    group.sample_size(samples);
    let pieces = 1400u32;
    let mut rng = SmallRng::seed_from_u64(9);
    let mut availability = Availability::new(pieces);
    for _ in 0..80 {
        let mut bf = Bitfield::new(pieces);
        for p in 0..pieces {
            if rng.random_bool(0.5) {
                bf.set(p);
            }
        }
        availability.add_peer(&bf);
    }
    let mut own = Bitfield::new(pieces);
    for p in 0..pieces / 4 {
        own.set(p * 2);
    }
    let remote = Bitfield::full(pieces);
    let mut picker = PickerKind::RarestFirst.build(pieces);
    let mut pick_rng = SmallRng::seed_from_u64(11);
    group.bench_function("rarest_pick_1400", |b| {
        b.iter(|| {
            let never = |_p: u32| false;
            let ctx = PickContext {
                own: &own,
                remote: &remote,
                availability: &availability,
                in_progress: &never,
                downloaded_pieces: 100,
            };
            black_box(picker.pick(&ctx, &mut pick_rng))
        })
    });

    // The mega-swarm pick: 100k pieces, a dense remote, a half-full own
    // bitfield. With the bucketed index this costs one bucket scan over
    // the rarest runs, not a 100k-candidate sweep.
    let pieces = 100_000u32;
    let mut availability = Availability::new(pieces);
    for _ in 0..40 {
        let mut bf = Bitfield::new(pieces);
        for p in 0..pieces {
            if rng.random_bool(0.5) {
                bf.set(p);
            }
        }
        availability.add_peer(&bf);
    }
    let mut own = Bitfield::new(pieces);
    for p in 0..pieces / 2 {
        own.set(p * 2);
    }
    let remote = Bitfield::full(pieces);
    let mut picker = PickerKind::RarestFirst.build(pieces);
    group.bench_function("rarest_pick_100k", |b| {
        b.iter(|| {
            let never = |_p: u32| false;
            let ctx = PickContext {
                own: &own,
                remote: &remote,
                availability: &availability,
                in_progress: &never,
                downloaded_pieces: 1000,
            };
            black_box(picker.pick(&ctx, &mut pick_rng))
        })
    });
    group.finish();

    c.results().to_vec()
}

/// Compare headlines against `baseline_path`; a returned entry is one
/// regression message. Always prints the full per-headline delta table
/// (current value, baseline, delta) — trends should be visible well
/// before they trip the 15 % gate.
fn compare_to_baseline(report: &Value, baseline_path: &str) -> Vec<String> {
    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("benchrun: cannot read {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline: Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("benchrun: invalid baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let Some(base_heads) = field(&baseline, "headlines").and_then(as_object) else {
        eprintln!("benchrun: baseline {baseline_path} has no headlines object");
        std::process::exit(2);
    };
    let current = field(report, "headlines")
        .and_then(as_object)
        .expect("our own report has headlines");
    let mut regressions = Vec::new();
    println!("compare          : vs {baseline_path}");
    println!(
        "  {:<28} {:>12} {:>12} {:>9}",
        "headline", "value", "baseline", "delta"
    );
    // The union of both key sets, baseline-first: a headline missing
    // from either side still gets a row.
    let keys: std::collections::BTreeSet<&String> =
        base_heads.keys().chain(current.keys()).collect();
    for key in keys {
        let base = base_heads.get(key.as_str()).and_then(Value::as_f64);
        let cur = current.get(key.as_str()).and_then(Value::as_f64);
        let (Some(base), Some(cur)) = (base, cur) else {
            let (val, note) = match cur {
                Some(c) => (format!("{c:.3e}"), "new headline, no baseline"),
                None => ("-".to_string(), "missing from current report"),
            };
            println!("  {key:<28} {val:>12} {:>12} {note:>9}", "-");
            if cur.is_none() {
                regressions.push(format!("{key}: missing from current report"));
            }
            continue;
        };
        if key.ends_with("_overhead_pct") {
            // Lower is better, and the sign is meaningful (noise can
            // drive it slightly negative): regress on growth beyond
            // `OVERHEAD_SLACK_POINTS` percentage points over baseline.
            println!(
                "  {key:<28} {:>11.1}% {:>11.1}% {:>8.1}pt",
                cur,
                base,
                cur - base
            );
            if cur > base + OVERHEAD_SLACK_POINTS {
                regressions.push(format!(
                    "{key}: {cur:.1}% overhead exceeds baseline {base:.1}% + {OVERHEAD_SLACK_POINTS:.0} points"
                ));
            }
            continue;
        }
        let pct = if base > 0.0 {
            (cur - base) / base * 100.0
        } else {
            0.0
        };
        println!("  {key:<28} {cur:>12.3e} {base:>12.3e} {pct:>+8.1}%");
        if base > 0.0 && cur < base * REGRESSION_FLOOR {
            regressions.push(format!(
                "{key}: {cur:.3e} is {:.1}% of baseline {base:.3e} (floor {:.0}%)",
                cur / base * 100.0,
                REGRESSION_FLOOR * 100.0
            ));
        }
    }
    regressions
}
