//! The paper's live-swarm claims re-checked over a WAN link model.
//!
//! The IMC 2006 measurements ran on real torrents whose peers sat
//! behind asymmetric DSL and cable links — not on a uniform-latency
//! LAN. The `asymmetric_dsl` topology preset reproduces that mix
//! (per-direction bandwidth, asymmetric one-way delay, a little
//! loss), and the paper's conclusions must survive it:
//!
//! 1. **Entropy stays near ideal** (§III): rarest first keeps piece
//!    availability entropy ≥ 0.7 even when the crowd is split across
//!    link classes with very different upload capacity.
//! 2. **Reciprocation persists** (§IV): the choke algorithm still
//!    fosters reciprocated unchokes when round-trip times and
//!    bandwidth differ per pair.
//! 3. **Determinism is untouched**: full-duplex links draw loss and
//!    jitter from the same master RNG discipline as everything else,
//!    so a WAN swarm's digest is a pure function of spec + seed —
//!    across repeat runs and across worker threads.

use bt_repro::obs::{Registry, SeriesStore};
use bt_repro::sim::Swarm;
use bt_repro::torrents::scenarios::wan_mega_flash_crowd;
use bt_repro::torrents::PresetOptions;

fn wan_opts() -> PresetOptions {
    PresetOptions {
        pieces: 8,
        duration: bt_repro::wire::time::Duration::from_secs(1800),
        ..PresetOptions::default()
    }
}

#[test]
fn dsl_flash_crowd_keeps_entropy_and_reciprocation_healthy() {
    let spec = wan_mega_flash_crowd(400, "asymmetric_dsl", &wan_opts());
    let registry = Registry::new_manual();
    let store = SeriesStore::new(&registry);
    let result = Swarm::new(spec)
        .with_metrics(registry)
        .with_series(store.clone())
        .with_health(Default::default())
        .run();
    assert!(
        result.completed_peers >= 350,
        "DSL crowd stalled: {} / 401 completed",
        result.completed_peers
    );
    let health = result.health.expect("health monitors attached");
    let monitor = |name: &str| {
        health
            .monitors
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("{name} monitor missing"))
    };
    let entropy = monitor("entropy");
    assert!(
        entropy.healthy && entropy.value >= 0.7,
        "entropy {} under the DSL topology breaks the §III claim",
        entropy.value
    );
    let reciprocation = monitor("reciprocation");
    assert!(
        reciprocation.healthy,
        "reciprocation {} under the DSL topology breaks the §IV claim",
        reciprocation.value
    );
    assert!(
        monitor("starvation").healthy,
        "peers starved under the DSL topology"
    );
    // The dashboard series exist for the WAN run too.
    let live = store.views(Some("live.entropy"));
    assert!(!live.is_empty() && live[0].points.len() > 5);
}

#[test]
fn wan_digest_is_deterministic_across_repeats_and_threads() {
    let spec = wan_mega_flash_crowd(250, "asymmetric_dsl", &wan_opts());
    let sequential = Swarm::new(spec.clone()).run().digest();
    let repeat = Swarm::new(spec.clone()).run().digest();
    assert_eq!(sequential, repeat, "repeat WAN run diverged");
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || Swarm::new(spec).run().digest())
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), sequential, "threaded WAN run diverged");
    }
}
