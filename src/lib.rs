//! # bt-repro — reproduction of *Rarest First and Choke Algorithms Are Enough*
//!
//! A complete, deterministic reproduction of Legout, Urvoy-Keller &
//! Michiardi (IMC 2006): the BitTorrent client the paper instruments, the
//! swarm substrate it was measured on (simulated — see `DESIGN.md`), the
//! instrumentation, the 26-torrent Table I testbed, and the analysis
//! pipeline behind every figure.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`wire`] — bencoding, metainfo, SHA-1, peer wire codec, tracker;
//! * [`piece`] — bitfields, availability, rarest first + baselines,
//!   block scheduling (strict priority, end game);
//! * [`choke`] — rate estimation, leecher/seed chokers, tit-for-tat;
//! * [`core`] — the client engine, a sans-io state machine
//!   ([`core::Input`]s in, [`core::Action`]s out);
//! * [`sim`] — the discrete-event swarm simulator driving the engine;
//! * [`net`] — the real-socket runtime driving the *same* engine over
//!   non-blocking TCP, with an accelerated virtual clock;
//! * [`instrument`] — trace records and peer identification;
//! * [`obs`] — runtime telemetry: metrics registry (counters, gauges,
//!   histograms) and leveled structured event log;
//! * [`analysis`] — entropy, replication, interarrival, fairness and
//!   unchoke-correlation metrics;
//! * [`torrents`] — the Table I scenarios and the scenario runner.
//!
//! ## Quickstart
//!
//! ```
//! use bt_repro::sim::{BehaviorProfile, Swarm, SwarmSpec};
//! use bt_repro::wire::time::Duration;
//!
//! let mut peers = vec![BehaviorProfile::seed()];
//! for _ in 0..4 {
//!     peers.push(BehaviorProfile::leecher(Duration::ZERO));
//! }
//! let spec = SwarmSpec {
//!     seed: 7,
//!     total_len: 4 * 256 * 1024,
//!     piece_len: 256 * 1024,
//!     duration: Duration::from_secs(3600),
//!     peers,
//!     local: Some(1),
//!     ..SwarmSpec::default()
//! };
//! let result = Swarm::new(spec).run();
//! assert_eq!(result.completed_peers, 4);
//! ```

#![warn(missing_docs)]

pub use bt_analysis as analysis;
pub use bt_choke as choke;
pub use bt_core as core;
pub use bt_instrument as instrument;
pub use bt_net as net;
pub use bt_obs as obs;
pub use bt_piece as piece;
pub use bt_sim as sim;
pub use bt_stat as stat;
pub use bt_torrents as torrents;
pub use bt_wire as wire;
