//! Offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available in this build environment, so the derives are implemented
//! directly over `proc_macro::TokenStream`. They target the workspace's
//! JSON-only `serde` shim:
//!
//! * `Serialize` generates `fn serialize_json(&self, out: &mut String)`
//!   writing compact JSON;
//! * `Deserialize` generates
//!   `fn deserialize_json(&Value) -> Result<Self, Error>` reading the
//!   parsed JSON tree.
//!
//! Supported shapes (everything this workspace declares): non-generic
//! structs with named fields, newtype structs, and enums whose variants
//! are unit, tuple, or struct-like. Serde field/variant attributes are
//! not supported and generics are rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the workspace `serde::Serialize` (JSON writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the workspace `serde::Deserialize` (JSON reader).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with N fields (N = 1 is the serde "newtype" form).
    Tuple(usize),
    /// Enum.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_field_names(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_top_level_fields(g.stream()))
            }
            other => panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1;
        }
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            other => panic!("serde shim derive: malformed attribute: {other:?}"),
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Field names of a named-fields body (`{ a: T, pub b: U, ... }`).
fn parse_field_names(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    loop {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        }
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field name, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
    }
    names
}

/// Advance past one type, stopping after the `,` that follows it (or at
/// the end of the stream). Tracks `<`/`>` nesting because generic
/// argument commas are plain puncts, not grouped token trees.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Number of fields in a tuple body (`(T, U, ...)`).
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        // A field may start with attributes and a visibility.
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    loop {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_field_names(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separator.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation (emitted as source text, then reparsed)
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut s = String::from("out.push('{');\n");
            for (k, f) in fields.iter().enumerate() {
                if k > 0 {
                    s.push_str("out.push(',');\n");
                }
                s.push_str(&format!(
                    "::serde::ser_key(out, \"{f}\");\n::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            s.push_str("out.push('}');");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize_json(&self.0, out);".to_string(),
        Shape::Tuple(n) => {
            let mut s = String::from("out.push('[');\n");
            for k in 0..*n {
                if k > 0 {
                    s.push_str("out.push(',');\n");
                }
                s.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{k}, out);\n"
                ));
            }
            s.push_str("out.push(']');");
            s
        }
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        s.push_str(&format!(
                            "{name}::{vn} => ::serde::ser_str(out, \"{vn}\"),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        s.push_str(&format!(
                            "{name}::{vn}(__f0) => {{ out.push('{{'); ::serde::ser_key(out, \"{vn}\"); ::serde::Serialize::serialize_json(__f0, out); out.push('}}'); }}\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "{name}::{vn}({}) => {{ out.push('{{'); ::serde::ser_key(out, \"{vn}\"); out.push('[');",
                            binders.join(", ")
                        );
                        for (k, b) in binders.iter().enumerate() {
                            if k > 0 {
                                arm.push_str(" out.push(',');");
                            }
                            arm.push_str(&format!(
                                " ::serde::Serialize::serialize_json({b}, out);"
                            ));
                        }
                        arm.push_str(" out.push(']'); out.push('}'); }\n");
                        s.push_str(&arm);
                    }
                    VariantKind::Struct(fields) => {
                        let mut arm = format!(
                            "{name}::{vn} {{ {} }} => {{ out.push('{{'); ::serde::ser_key(out, \"{vn}\"); out.push('{{');",
                            fields.join(", ")
                        );
                        for (k, f) in fields.iter().enumerate() {
                            if k > 0 {
                                arm.push_str(" out.push(',');");
                            }
                            arm.push_str(&format!(
                                " ::serde::ser_key(out, \"{f}\"); ::serde::Serialize::serialize_json({f}, out);"
                            ));
                        }
                        arm.push_str(" out.push('}'); out.push('}'); }\n");
                        s.push_str(&arm);
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n    }}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut s = format!(
                "let __o = ::serde::as_object(__v, \"{name}\")?;\n::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!("    {f}: ::serde::de_field(__o, \"{f}\")?,\n"));
            }
            s.push_str("})");
            s
        }
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_json(__v)?))"
        ),
        Shape::Tuple(n) => {
            let mut s = format!("let __a = ::serde::as_array(__v, {n}usize, \"{name}\")?;\n");
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::de_elem(__a, {k}usize)?"))
                .collect();
            s.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            ));
            s
        }
        Shape::Enum(variants) => {
            let mut s = format!(
                "let (__tag, __payload) = ::serde::variant_of(__v, \"{name}\")?;\nmatch (__tag, __payload) {{\n"
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        s.push_str(&format!(
                            "(\"{vn}\", ::std::option::Option::None) => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        s.push_str(&format!(
                            "(\"{vn}\", ::std::option::Option::Some(__p)) => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize_json(__p)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::de_elem(__a, {k}usize)?"))
                            .collect();
                        s.push_str(&format!(
                            "(\"{vn}\", ::std::option::Option::Some(__p)) => {{ let __a = ::serde::as_array(__p, {n}usize, \"{name}::{vn}\")?; ::std::result::Result::Ok({name}::{vn}({})) }}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(__o, \"{f}\")?"))
                            .collect();
                        s.push_str(&format!(
                            "(\"{vn}\", ::std::option::Option::Some(__p)) => {{ let __o = ::serde::as_object(__p, \"{name}::{vn}\")?; ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            s.push_str(&format!(
                "_ => ::std::result::Result::Err(::serde::json::Error::unknown_variant(__tag, \"{name}\")),\n}}"
            ));
            s
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn deserialize_json(__v: &::serde::json::Value) -> ::std::result::Result<Self, ::serde::json::Error> {{\n{body}\n    }}\n}}\n"
    )
}
