//! Piece-picker benchmarks: rarest first and baselines over realistic
//! peer-set sizes and piece counts, plus the availability bookkeeping.

use bt_piece::{Availability, Bitfield, PickContext, PickerKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Build a peer-set availability for `pieces` pieces and 80 peers with
/// random 50% bitfields, plus the local/remote bitfields.
fn setup(pieces: u32) -> (Bitfield, Bitfield, Availability) {
    let mut rng = SmallRng::seed_from_u64(9);
    let mut availability = Availability::new(pieces);
    for _ in 0..80 {
        let mut bf = Bitfield::new(pieces);
        for p in 0..pieces {
            if rng.random_bool(0.5) {
                bf.set(p);
            }
        }
        availability.add_peer(&bf);
    }
    let mut own = Bitfield::new(pieces);
    for p in 0..pieces / 4 {
        own.set(p * 2);
    }
    let remote = Bitfield::full(pieces);
    (own, remote, availability)
}

fn bench_pickers(c: &mut Criterion) {
    let mut group = c.benchmark_group("picker");
    for pieces in [256u32, 1400, 2800] {
        let (own, remote, availability) = setup(pieces);
        for kind in [
            PickerKind::RarestFirst,
            PickerKind::Random,
            PickerKind::Sequential,
        ] {
            let mut picker = kind.build(pieces);
            let mut rng = SmallRng::seed_from_u64(11);
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), pieces),
                &pieces,
                |b, _| {
                    b.iter(|| {
                        let never = |_p: u32| false;
                        let ctx = PickContext {
                            own: &own,
                            remote: &remote,
                            availability: &availability,
                            in_progress: &never,
                            downloaded_pieces: 100,
                        };
                        black_box(picker.pick(&ctx, &mut rng))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_availability(c: &mut Criterion) {
    let mut group = c.benchmark_group("availability");
    let (_, _, availability) = setup(1400);
    group.bench_function("rarest_set_1400", |b| {
        b.iter(|| black_box(availability.rarest_set_size()))
    });
    group.bench_function("stats_1400", |b| b.iter(|| black_box(availability.stats())));
    let bf = Bitfield::full(1400);
    group.bench_function("add_remove_peer_1400", |b| {
        b.iter(|| {
            let mut av = availability.clone();
            av.add_peer(&bf);
            av.remove_peer(&bf);
            black_box(av.min_count())
        })
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    use bt_piece::{Geometry, RequestScheduler};
    let mut group = c.benchmark_group("scheduler");
    for pieces in [256u32, 1400] {
        let geometry = Geometry::new(u64::from(pieces) * 256 * 1024, 256 * 1024);
        let (own, remote, availability) = setup(pieces);
        group.bench_with_input(
            BenchmarkId::new("next_requests_pipeline8", pieces),
            &pieces,
            |b, _| {
                let mut sched: RequestScheduler<u32> = RequestScheduler::new(geometry);
                let mut picker = bt_piece::RarestFirst::default();
                let mut rng = SmallRng::seed_from_u64(5);
                let mut peer = 0u32;
                b.iter(|| {
                    peer = peer.wrapping_add(1) % 64;
                    let never = |_p: u32| false;
                    let ctx = bt_piece::PickContext {
                        own: &own,
                        remote: &remote,
                        availability: &availability,
                        in_progress: &never,
                        downloaded_pieces: 100,
                    };
                    let reqs = sched.next_requests(peer, &ctx, &mut picker, &mut rng, 8);
                    // Deliver everything so the scheduler never saturates.
                    for r in &reqs {
                        let receipt = sched.on_block_received(peer, *r);
                        if let Some(p) = receipt.completed_piece {
                            sched.on_piece_verified(p);
                        }
                    }
                    black_box(reqs.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pickers, bench_availability, bench_scheduler);
criterion_main!(benches);
