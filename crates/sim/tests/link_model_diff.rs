//! Differential tests for the link-model layer.
//!
//! The redesign contract has two halves:
//!
//! 1. `UniformLink` (and the legacy flat-latency shim that maps onto
//!    it) reproduces the pre-link-layer delivery path **event for
//!    event** — same traces, same digests. The repo-level golden suite
//!    (`tests/golden_traces.rs`) pins the Table I fingerprints and the
//!    `flash_crowd_10k` digest on top of this.
//! 2. Full-duplex topologies (per-direction bandwidth, loss,
//!    asymmetric delay) stay deterministic: same spec + seed ⇒ same
//!    digest, whatever thread count runs the swarms.

use bt_sim::swarm::{Swarm, SwarmSpec};
use bt_sim::topology::TopologySpec;
use bt_sim::{BehaviorProfile, LinkRule, LinkSpec};
use bt_wire::time::Duration;

fn tiny_builder(seed: u64) -> bt_sim::SwarmSpecBuilder {
    SwarmSpec::builder()
        .seed(seed)
        .pieces(8, 256 * 1024)
        .duration(Duration::from_secs(4000))
        .peer(BehaviorProfile::seed())
        .peers_of(4, BehaviorProfile::leecher(Duration::ZERO))
        .local(1)
}

/// The tentpole guarantee: an explicit `NetModel::Uniform` with the
/// legacy default parameters replays the legacy-field path event for
/// event — traces, completions and digests all byte-identical.
#[test]
fn explicit_uniform_matches_legacy_shim_event_for_event() {
    for seed in [3, 7, 42] {
        let legacy = Swarm::new(tiny_builder(seed).build()).run();
        let typed = Swarm::new(
            tiny_builder(seed)
                .uniform_net(Duration::from_millis(50), Duration::from_millis(100))
                .build(),
        )
        .run();
        assert_eq!(legacy.events_processed, typed.events_processed);
        assert_eq!(legacy.completion, typed.completion);
        assert_eq!(
            legacy.trace.as_ref().unwrap().events,
            typed.trace.as_ref().unwrap().events
        );
        assert_eq!(legacy.digest(), typed.digest(), "seed {seed}");
    }
}

/// Old serialized specs carry no `net` section; deserializing one must
/// resolve to the same uniform model (and the same run) as the
/// original spec object.
#[test]
fn legacy_json_spec_without_net_section_replays_identically() {
    let spec = tiny_builder(11).build();
    let json = serde_json::to_string(&spec).unwrap();
    // Simulate an old fixture: strip the net section entirely.
    let stripped = json.replace(",\"net\":null", "");
    assert_ne!(json, stripped, "test must actually strip the field");
    let revived: SwarmSpec = serde_json::from_str(&stripped).unwrap();
    assert_eq!(revived.net, None);
    assert_eq!(spec.net_model(), revived.net_model());
    let a = Swarm::new(spec).run();
    let b = Swarm::new(revived).run();
    assert_eq!(a.digest(), b.digest());
}

/// Full-duplex topologies are deterministic across repeat runs, and a
/// JSON round-trip of the topology changes nothing.
#[test]
fn topology_runs_are_deterministic_and_json_stable() {
    for name in bt_sim::PRESET_NAMES {
        let topo = TopologySpec::preset(name).unwrap();
        let build = |t: TopologySpec| tiny_builder(5).topology(t).build();
        let a = Swarm::new(build(topo.clone())).run();
        let b = Swarm::new(build(topo.clone())).run();
        let via_json = Swarm::new(build(TopologySpec::from_json(&topo.to_json()).unwrap())).run();
        assert_eq!(a.digest(), b.digest(), "{name}: repeat run diverged");
        assert_eq!(
            a.digest(),
            via_json.digest(),
            "{name}: JSON round-trip diverged"
        );
        assert!(a.completed_peers >= 3, "{name}: swarm fell apart");
    }
}

/// The lossy bottleneck topology stays deterministic when many swarms
/// run concurrently — the `--jobs` contract: worker threads share
/// nothing, so the digest is a pure function of spec + seed.
#[test]
fn lossy_topology_is_deterministic_across_jobs() {
    let spec = tiny_builder(13)
        .topology(TopologySpec::two_isp_bottleneck())
        .duration(Duration::from_secs(8000))
        .build();
    let sequential = Swarm::new(spec.clone()).run().digest();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || Swarm::new(spec).run().digest())
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), sequential);
    }
}

/// Heavy loss slows a swarm down but never wedges it: redelivery is
/// delay-only (reliable transport over a lossy path) and the per-link
/// watermark keeps deliveries in send order.
#[test]
fn heavy_loss_is_survivable() {
    let mut lossy = TopologySpec::homogeneous();
    lossy.name = "lossy".to_owned();
    lossy.rules[0].link.loss = 0.2;
    lossy.rules[0].link.jitter = Duration::from_millis(40);
    let spec = tiny_builder(17)
        .topology(lossy)
        .duration(Duration::from_secs(12_000))
        .build();
    let result = Swarm::new(spec).run();
    assert_eq!(result.completed_peers, 4, "loss must delay, not starve");
}

/// A narrow per-link bandwidth cap actually binds: the same swarm
/// takes longer to finish than with uncapped links.
#[test]
fn per_link_bandwidth_caps_bind() {
    let capped_topo = |bandwidth: Option<u64>| TopologySpec {
        name: "capped".to_owned(),
        base_delay: Duration::from_millis(50),
        rto: Duration::from_secs(1),
        classes: vec![bt_sim::ClassSpec {
            name: "peer".to_owned(),
            weight: 1,
        }],
        rules: vec![LinkRule {
            from: "*".to_owned(),
            to: "*".to_owned(),
            link: LinkSpec {
                delay: Duration::from_millis(30),
                jitter: Duration::ZERO,
                bandwidth,
                loss: 0.0,
            },
        }],
    };
    let run = |bw| {
        Swarm::new(
            tiny_builder(23)
                .topology(capped_topo(bw))
                .duration(Duration::from_secs(30_000))
                .build(),
        )
        .run()
    };
    let open = run(None);
    let capped = run(Some(4_000)); // 4 kB/s per link vs 20 kB/s peer uplink
    assert_eq!(open.completed_peers, 4);
    assert_eq!(capped.completed_peers, 4);
    let finish =
        |r: &bt_sim::swarm::SwarmResult| r.completion.iter().flatten().map(|t| t.0).max().unwrap();
    assert!(
        finish(&capped) > finish(&open) * 3 / 2,
        "4 kB/s links should stretch completion well past the open run \
         ({} vs {})",
        finish(&capped),
        finish(&open)
    );
}

/// Different topologies genuinely change the dynamics — the DSL mix
/// must not accidentally reduce to the uniform path.
#[test]
fn topologies_change_the_run() {
    let uniform = Swarm::new(tiny_builder(29).build()).run();
    let dsl = Swarm::new(
        tiny_builder(29)
            .topology(TopologySpec::asymmetric_dsl())
            .build(),
    )
    .run();
    assert_ne!(uniform.digest(), dsl.digest());
}
