//! In-process tracker for loopback swarms.
//!
//! The engine addresses peers by virtual [`IpAddr`] (its protocol-level
//! identity); TCP needs a real [`SocketAddr`]. The tracker keeps that
//! mapping, answers announces with the currently active peers, and
//! tallies `started` / `completed` events — the minimum a BEP 3 tracker
//! does, shared between threads behind one mutex.

use bt_wire::peer_id::IpAddr;
use bt_wire::tracker::{AnnounceEvent, PeerEntry};
use std::net::SocketAddr;
use std::sync::Mutex;

struct Entry {
    ip: IpAddr,
    addr: SocketAddr,
    /// Has announced `Started` and not yet `Stopped`.
    active: bool,
}

#[derive(Default)]
struct Inner {
    peers: Vec<Entry>,
    started: u64,
    completed: u64,
}

/// A thread-safe loopback tracker; clone it behind an [`std::sync::Arc`].
#[derive(Default)]
pub struct LoopbackTracker {
    inner: Mutex<Inner>,
}

impl LoopbackTracker {
    /// An empty tracker.
    pub fn new() -> LoopbackTracker {
        LoopbackTracker::default()
    }

    /// Register a peer's listening socket before its runtime starts, so
    /// every later `resolve` works regardless of thread start order. The
    /// peer stays invisible to announces until it announces `Started`.
    pub fn register(&self, ip: IpAddr, addr: SocketAddr) {
        let mut inner = self.inner.lock().unwrap();
        inner.peers.retain(|e| e.ip != ip);
        inner.peers.push(Entry {
            ip,
            addr,
            active: false,
        });
    }

    /// The real socket address behind a virtual peer address.
    pub fn resolve(&self, ip: IpAddr) -> Option<SocketAddr> {
        let inner = self.inner.lock().unwrap();
        inner.peers.iter().find(|e| e.ip == ip).map(|e| e.addr)
    }

    /// Handle one announce: update membership state, then return up to
    /// `num_want` *active* peers other than the caller. Only peers that
    /// have already announced are returned, which staggers dialing and
    /// avoids most simultaneous cross-connections between peer pairs.
    pub fn announce(&self, ip: IpAddr, event: AnnounceEvent, num_want: usize) -> Vec<PeerEntry> {
        let mut inner = self.inner.lock().unwrap();
        match event {
            AnnounceEvent::Started => {
                inner.started += 1;
                if let Some(e) = inner.peers.iter_mut().find(|e| e.ip == ip) {
                    e.active = true;
                }
            }
            AnnounceEvent::Completed => inner.completed += 1,
            AnnounceEvent::Stopped => {
                if let Some(e) = inner.peers.iter_mut().find(|e| e.ip == ip) {
                    e.active = false;
                }
            }
            AnnounceEvent::Periodic => {}
        }
        inner
            .peers
            .iter()
            .filter(|e| e.active && e.ip != ip)
            .take(num_want)
            .map(|e| PeerEntry {
                ip: e.ip,
                port: e.addr.port(),
            })
            .collect()
    }

    /// How many `Started` announces have been seen.
    pub fn started(&self) -> u64 {
        self.inner.lock().unwrap().started
    }

    /// How many `Completed` announces have been seen.
    pub fn completed(&self) -> u64 {
        self.inner.lock().unwrap().completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn announce_returns_only_active_others() {
        let t = LoopbackTracker::new();
        t.register(IpAddr(1), addr(6881));
        t.register(IpAddr(2), addr(6882));
        t.register(IpAddr(3), addr(6883));
        // Nobody active yet: first announce sees an empty swarm.
        assert!(t.announce(IpAddr(1), AnnounceEvent::Started, 50).is_empty());
        let seen = t.announce(IpAddr(2), AnnounceEvent::Started, 50);
        assert_eq!(
            seen,
            vec![PeerEntry {
                ip: IpAddr(1),
                port: 6881
            }]
        );
        // A periodic announce never includes the caller.
        let seen = t.announce(IpAddr(1), AnnounceEvent::Periodic, 50);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].ip, IpAddr(2));
        assert_eq!(t.started(), 2);
    }

    #[test]
    fn resolve_and_lifecycle_counters() {
        let t = LoopbackTracker::new();
        t.register(IpAddr(7), addr(7000));
        assert_eq!(t.resolve(IpAddr(7)), Some(addr(7000)));
        assert_eq!(t.resolve(IpAddr(8)), None);
        t.announce(IpAddr(7), AnnounceEvent::Started, 50);
        t.announce(IpAddr(7), AnnounceEvent::Completed, 50);
        t.announce(IpAddr(7), AnnounceEvent::Stopped, 50);
        assert_eq!((t.started(), t.completed()), (1, 1));
        // Stopped peers vanish from announces but still resolve.
        t.register(IpAddr(9), addr(9000));
        assert!(t.announce(IpAddr(9), AnnounceEvent::Started, 50).is_empty());
        assert_eq!(t.resolve(IpAddr(7)), Some(addr(7000)));
    }
}
