//! Experiment drivers: one function per table/figure/ablation.
//!
//! Every driver returns plain data; rendering lives in [`crate::report`]
//! and the `figures` binary. DESIGN.md §5 maps each paper artefact to the
//! driver here that regenerates it.

use bt_analysis::{
    entropy, fairness, pearson, unchoke_correlation, EntropySummary, FairnessSummary,
    InterarrivalAnalysis, Percentiles, ReplicationSeries, StateWindow, UnchokeCorrelation,
};
use bt_choke::ChokerKind;
use bt_piece::PickerKind;
use bt_sim::behavior::{BehaviorProfile, CapacityClass, Role};
use bt_sim::swarm::{Swarm, SwarmSpec};
use bt_torrents::{run_scenario, torrent, RunConfig, ScenarioOutcome};
use bt_wire::peer_id::ClientKind;
use bt_wire::time::{Duration, Instant};

/// Run the full 26-torrent sweep (Table I + figures 1, 9, 11 input)
/// across `jobs` worker threads. Outcomes come back in Table I order
/// with traces byte-identical to a sequential run — see
/// [`bt_torrents::run_scenarios_parallel`].
pub fn sweep(
    cfg: &RunConfig,
    jobs: usize,
    mut progress: impl FnMut(u32) + Send,
) -> Vec<ScenarioOutcome> {
    bt_torrents::run_table1_parallel(cfg, jobs, move |o| progress(o.spec.id))
}

/// One row of figure 1: entropy percentiles for a torrent.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Torrent ID.
    pub id: u32,
    /// Top graph: local-interested-in-remote ratio percentiles.
    pub local_in_remote: Percentiles,
    /// Bottom graph: remote-interested-in-local ratio percentiles.
    pub remote_in_local: Percentiles,
    /// Number of (filtered) remote leechers behind the percentiles.
    pub peers: usize,
    /// Whether the scenario was configured transient.
    pub transient: bool,
}

/// Figure 1 from a sweep.
pub fn fig1(outcomes: &[ScenarioOutcome]) -> Vec<Fig1Row> {
    outcomes
        .iter()
        .map(|o| {
            let e: EntropySummary = entropy(&o.trace);
            Fig1Row {
                id: o.spec.id,
                local_in_remote: e.local_in_remote,
                remote_in_local: e.remote_in_local,
                peers: e.peers.len(),
                transient: o.spec.transient,
            }
        })
        .collect()
}

/// Figures 2/3 (torrent 8, leecher state) or 4/5/6 (torrent 7, full
/// session): the replication series of one scenario.
pub fn replication_series(
    outcome: &ScenarioOutcome,
    leecher_state_only: bool,
) -> ReplicationSeries {
    let s = ReplicationSeries::from_trace(&outcome.trace);
    if leecher_state_only {
        s.leecher_state(&outcome.trace)
    } else {
        s
    }
}

/// Figures 7/8: interarrival analyses of one scenario (pieces, blocks).
pub fn interarrivals(outcome: &ScenarioOutcome) -> (InterarrivalAnalysis, InterarrivalAnalysis) {
    (
        InterarrivalAnalysis::pieces(&outcome.trace),
        InterarrivalAnalysis::blocks(&outcome.trace),
    )
}

/// Figures 9/11: fairness summaries per torrent.
pub fn fig9(outcomes: &[ScenarioOutcome]) -> Vec<(u32, FairnessSummary)> {
    outcomes
        .iter()
        .map(|o| (o.spec.id, fairness(&o.trace, StateWindow::Leecher)))
        .collect()
}

/// Figure 11: seed-state fairness per torrent.
pub fn fig11(outcomes: &[ScenarioOutcome]) -> Vec<(u32, FairnessSummary)> {
    outcomes
        .iter()
        .map(|o| (o.spec.id, fairness(&o.trace, StateWindow::Seed)))
        .collect()
}

/// Figure 10: unchoke/interest correlation for one scenario, plus the
/// Pearson coefficients of both states.
pub fn fig10(outcome: &ScenarioOutcome) -> (UnchokeCorrelation, f64, f64) {
    let c = unchoke_correlation(&outcome.trace);
    let r_ls = pearson(&c.leecher);
    let r_ss = pearson(&c.seed);
    (c, r_ls, r_ss)
}

// ----------------------------------------------------------------------
// Validation against ground truth
// ----------------------------------------------------------------------

/// Local-view inference vs the simulator's global ground truth for one
/// torrent.
#[derive(Debug, Clone)]
pub struct GlobalCheckRow {
    /// Torrent ID.
    pub id: u32,
    /// The local peer's §IV-A.2 classification (missing piece in the
    /// peer set most of the time).
    pub local_transient: bool,
    /// Local missing-piece sample fraction.
    pub local_missing_fraction: f64,
    /// Ground truth: fraction of snapshots where some piece has exactly
    /// one copy in the whole torrent (a §II-A *rare piece* exists).
    pub truth_rare_fraction: f64,
    /// Ground truth: mean number of single-copy pieces per snapshot.
    pub truth_single_copy_mean: f64,
    /// Ground-truth transient call (rare pieces exist in > 50 % of
    /// snapshots).
    pub truth_transient: bool,
}

/// Validate the local peer's transient/steady inference against global
/// knowledge — the check the paper explicitly could not perform ("we do
/// not have global knowledge of the torrent", §IV-A.2.a).
pub fn global_check(cfg: &RunConfig) -> Vec<GlobalCheckRow> {
    [7u32, 8]
        .into_iter()
        .map(|id| {
            let spec = torrent(id);
            let (mut swarm_spec, _scaled) = bt_torrents::build_swarm_spec(&spec, cfg);
            swarm_spec.sample_global = true;
            let result = Swarm::new(swarm_spec).run();
            let trace = result.trace.expect("local recorded");
            let ls = ReplicationSeries::from_trace(&trace).leecher_state(&trace);
            // Restrict ground truth to the same leecher-state window.
            let ls_end = trace.meta.seed_at.unwrap_or(trace.meta.session_end);
            let truth: Vec<&bt_sim::GlobalSample> = result
                .global_series
                .iter()
                .filter(|g| g.at <= ls_end)
                .collect();
            let rare_snapshots = truth.iter().filter(|g| g.single_copy_pieces > 0).count();
            let truth_rare_fraction = if truth.is_empty() {
                0.0
            } else {
                rare_snapshots as f64 / truth.len() as f64
            };
            let truth_single_copy_mean = if truth.is_empty() {
                0.0
            } else {
                truth
                    .iter()
                    .map(|g| f64::from(g.single_copy_pieces))
                    .sum::<f64>()
                    / truth.len() as f64
            };
            GlobalCheckRow {
                id,
                local_transient: ls.is_transient(),
                local_missing_fraction: ls.missing_piece_fraction(),
                truth_rare_fraction,
                truth_single_copy_mean,
                truth_transient: truth_rare_fraction > 0.5,
            }
        })
        .collect()
}

// ----------------------------------------------------------------------
// Ablations
// ----------------------------------------------------------------------

/// Result of one piece-picker variant in the picker ablation.
#[derive(Debug, Clone)]
pub struct PickerAblationRow {
    /// Strategy under test.
    pub picker: PickerKind,
    /// Median a/b entropy ratio seen by the local peer.
    pub entropy_ab_median: f64,
    /// Median c/d entropy ratio.
    pub entropy_cd_median: f64,
    /// Local peer download time in seconds (`None` = did not finish).
    pub local_download_secs: Option<f64>,
    /// Swarm-wide completions within the session.
    pub completed_peers: usize,
    /// Fraction of availability samples with a missing piece.
    pub missing_piece_fraction: f64,
}

/// Ablation: rarest first vs. random vs. sequential vs. global-rarest
/// oracle, on a single-seed torrent (the regime where piece choice
/// matters most — §IV-A).
pub fn ablation_picker(cfg: &RunConfig) -> Vec<PickerAblationRow> {
    let spec = torrent(6); // 1 seed / 130 leechers, transient
    [
        PickerKind::RarestFirst,
        PickerKind::Random,
        PickerKind::Sequential,
        PickerKind::GlobalRarest,
    ]
    .into_iter()
    .map(|picker| {
        let mut cfg = cfg.clone();
        cfg.base_config.picker = picker;
        // The transient phase alone lasts ~2000 s (rare pieces drain
        // at the initial seed's 20 kB/s); give the swarm time to
        // finish downloads so completion counts are comparable.
        cfg.session = Duration::from_secs(2 * 3600);
        let outcome = run_scenario(&spec, &cfg);
        let e = entropy(&outcome.trace);
        let series = ReplicationSeries::from_trace(&outcome.trace);
        let local_done = outcome
            .result
            .completion
            .last()
            .copied()
            .flatten()
            .map(|t| t.as_secs_f64() - 90.0); // local joined at t=90
        PickerAblationRow {
            picker,
            entropy_ab_median: e.local_in_remote.p50,
            entropy_cd_median: e.remote_in_local.p50,
            local_download_secs: local_done,
            completed_peers: outcome.result.completed_peers,
            missing_piece_fraction: series.missing_piece_fraction(),
        }
    })
    .collect()
}

/// Result of one seed-state choke variant in the seed-choke ablation.
#[derive(Debug, Clone)]
pub struct SeedChokeAblationRow {
    /// `true` = the new (≥4.0.0) algorithm, `false` = the old one.
    pub new_algorithm: bool,
    /// Jain fairness index over bytes served per peer.
    pub jain_index: f64,
    /// Share of the seed's bytes captured by the fast free rider.
    pub free_rider_share: f64,
    /// Distinct peers that received at least one block.
    pub peers_served: usize,
}

/// Ablation: new vs. old choke algorithm in seed state (§IV-B.3). The
/// instrumented peer is a *fast initial seed*; the swarm contains one
/// fast free rider that the old algorithm will favour.
pub fn ablation_seed_choke(cfg: &RunConfig) -> Vec<SeedChokeAblationRow> {
    [true, false]
        .into_iter()
        .map(|new_algorithm| {
            let mut base = cfg.base_config.clone();
            base.choker = if new_algorithm {
                ChokerKind::Standard
            } else {
                ChokerKind::OldSeed
            };
            let mut peers = Vec::new();
            // Local peer: the initial seed, campus-fast so that receiver
            // capacity differentiates peers under the old algorithm.
            peers.push(BehaviorProfile {
                role: Role::Seed,
                client: ClientKind::Mainline402,
                capacity: CapacityClass::Campus,
                join_at: Duration::ZERO,
                seed_linger: None,
                depart_at: None,
                prepopulate: false,
                restart_after: None,
            });
            // One campus-fast free rider (index 1)…
            peers.push(BehaviorProfile {
                role: Role::FreeRider,
                client: ClientKind::FreeRider,
                capacity: CapacityClass::Campus,
                join_at: Duration::from_secs(5),
                seed_linger: None,
                depart_at: None,
                prepopulate: false,
                restart_after: None,
            });
            // …and 14 ordinary DSL leechers.
            for i in 0..14 {
                peers.push(BehaviorProfile {
                    role: Role::Leecher,
                    client: ClientKind::Mainline402,
                    capacity: CapacityClass::Dsl,
                    join_at: Duration::from_secs(5 + i),
                    seed_linger: Some(Duration::from_secs(600)),
                    depart_at: None,
                    prepopulate: false,
                    restart_after: None,
                });
            }
            let spec = SwarmSpec {
                seed: cfg.seed,
                total_len: 256 * 256 * 1024,
                piece_len: 256 * 1024,
                duration: Duration::from_secs(2400),
                base_config: base,
                peers,
                local: Some(0),
                available_fraction: 1.0,
                ..SwarmSpec::default()
            };
            let result = Swarm::new(spec).run();
            let trace = result.trace.expect("local seed recorded");
            let f = fairness(&trace, StateWindow::Seed);
            // Identify the free rider by client ID, and measure its share
            // of the seed's bytes *while it was present* — once the fast
            // free rider finishes and leaves, the two algorithms face an
            // identical homogeneous population, which would dilute the
            // comparison.
            let registry = bt_instrument::identify::PeerRegistry::from_trace(&trace);
            let fr = registry
                .memberships
                .iter()
                .find(|m| m.peer.client_id == ClientKind::FreeRider.client_id());
            let (fr_handle, fr_left) = fr.map_or((u32::MAX, Instant::ZERO), |m| (m.handle, m.left));
            let mut fr_bytes = 0u64;
            let mut total_bytes = 0u64;
            for (t, ev) in trace.iter() {
                if t >= fr_left {
                    break;
                }
                if let bt_instrument::trace::TraceEvent::BlockSent { peer, block } = ev {
                    total_bytes += u64::from(block.length);
                    if *peer == fr_handle {
                        fr_bytes += u64::from(block.length);
                    }
                }
            }
            let share = if total_bytes > 0 {
                fr_bytes as f64 / total_bytes as f64
            } else {
                0.0
            };
            SeedChokeAblationRow {
                new_algorithm,
                jain_index: f.jain_index(),
                free_rider_share: share,
                peers_served: f.ranked.iter().filter(|p| p.uploaded > 0).count(),
            }
        })
        .collect()
}

/// Result of one choker variant in the tit-for-tat ablation.
#[derive(Debug, Clone)]
pub struct TftAblationRow {
    /// Choker used by every leecher in the swarm.
    pub choker: ChokerKind,
    /// Mean completion time (s) of honest asymmetric (DSL) leechers that
    /// finished.
    pub honest_mean_secs: Option<f64>,
    /// Honest leechers that completed within the session.
    pub honest_completed: usize,
    /// Free riders that completed within the session.
    pub free_riders_completed: usize,
    /// Total honest leechers / free riders in the swarm.
    pub honest_total: usize,
    /// Free riders in the swarm.
    pub free_rider_total: usize,
}

/// Ablation: the choke algorithm vs. bit-level tit-for-tat (§IV-B.1).
/// The population is asymmetric (slow uplinks, fast downlinks) with a few
/// free riders; TFT strands the excess capacity that choke would use.
pub fn ablation_tft(cfg: &RunConfig) -> Vec<TftAblationRow> {
    [ChokerKind::Standard, ChokerKind::TitForTat]
        .into_iter()
        .map(|choker| {
            let mut base = cfg.base_config.clone();
            base.choker = choker;
            let mut peers = Vec::new();
            // One slow initial seed: the swarm's *excess capacity* must
            // come from fast leechers, the case §IV-B.1 argues tit-for-tat
            // cannot exploit.
            peers.push(BehaviorProfile {
                role: Role::Seed,
                client: ClientKind::Mainline402,
                capacity: CapacityClass::Default,
                join_at: Duration::ZERO,
                seed_linger: None,
                depart_at: None,
                prepopulate: false,
                restart_after: None,
            });
            // Three fast-uplink leechers: enormous upload capacity but a
            // modest downlink, so they stay leechers for a long stretch —
            // pure *leecher-side* excess capacity, which is exactly what
            // bit-level tit-for-tat cannot hand out (a seed's capacity is
            // outside TFT's reach, so they also leave on completion).
            for i in 0..3 {
                peers.push(BehaviorProfile {
                    role: Role::Leecher,
                    client: ClientKind::Mainline402,
                    capacity: CapacityClass::Custom(1536 * 1024, 64 * 1024),
                    join_at: Duration::from_secs(i as u64),
                    seed_linger: Some(Duration::ZERO),
                    depart_at: None,
                    prepopulate: false,
                    restart_after: None,
                });
            }
            let honest_total = 12;
            for i in 0..honest_total {
                peers.push(BehaviorProfile {
                    role: Role::Leecher,
                    client: ClientKind::Mainline402,
                    capacity: CapacityClass::Dsl, // asymmetric: 16 kB/s up, 128 kB/s down
                    join_at: Duration::from_secs(5 + i as u64),
                    seed_linger: Some(Duration::from_secs(1200)),
                    depart_at: None,
                    prepopulate: false,
                    restart_after: None,
                });
            }
            let free_rider_total = 3;
            for i in 0..free_rider_total {
                peers.push(BehaviorProfile {
                    role: Role::FreeRider,
                    client: ClientKind::FreeRider,
                    capacity: CapacityClass::Cable,
                    join_at: Duration::from_secs(20 + i as u64),
                    seed_linger: None,
                    depart_at: None,
                    prepopulate: false,
                    restart_after: None,
                });
            }
            let spec = SwarmSpec {
                seed: cfg.seed,
                total_len: 64 * 256 * 1024,
                piece_len: 256 * 1024,
                duration: Duration::from_secs(7200),
                base_config: base,
                peers,
                local: None,
                available_fraction: 1.0,
                ..SwarmSpec::default()
            };
            let result = Swarm::new(spec).run();
            let honest_range = 4..4 + honest_total;
            let honest_times: Vec<f64> = honest_range
                .clone()
                .filter_map(|i| result.completion[i])
                .map(|t: Instant| t.as_secs_f64())
                .collect();
            let fr_range = 4 + honest_total..4 + honest_total + free_rider_total;
            TftAblationRow {
                choker,
                honest_mean_secs: if honest_times.is_empty() {
                    None
                } else {
                    Some(honest_times.iter().sum::<f64>() / honest_times.len() as f64)
                },
                honest_completed: honest_times.len(),
                free_riders_completed: fr_range.filter_map(|i| result.completion[i]).count(),
                honest_total,
                free_rider_total,
            }
        })
        .collect()
}

/// Result of one peer-discovery variant in the PEX ablation.
#[derive(Debug, Clone)]
pub struct PexAblationRow {
    /// Peer exchange on?
    pub pex: bool,
    /// Mean peer-set size seen by the instrumented late joiner.
    pub mean_peer_set: f64,
    /// The late joiner's download time in seconds.
    pub local_download_secs: Option<f64>,
    /// Swarm-wide completions.
    pub completed_peers: usize,
}

/// Ablation: peer exchange (BEP 10/11) under a rationing tracker.
///
/// §II-B credits the tracker's random 50-peer lists with keeping the
/// torrent's peer sets interconnected. When the tracker only hands out
/// two addresses per announce, that interconnection starves — unless
/// peers gossip their peer sets to each other.
pub fn ablation_pex(cfg: &RunConfig) -> Vec<PexAblationRow> {
    [false, true]
        .into_iter()
        .map(|pex| {
            let mut base = cfg.base_config.clone();
            base.pex_enabled = pex;
            let mut peers = vec![BehaviorProfile::seed(), BehaviorProfile::seed()];
            for i in 0..40 {
                peers.push(BehaviorProfile {
                    role: Role::Leecher,
                    client: ClientKind::Mainline402,
                    capacity: CapacityClass::Dsl,
                    join_at: Duration::from_secs(i),
                    seed_linger: Some(Duration::from_secs(1800)),
                    depart_at: None,
                    prepopulate: true,
                    restart_after: None,
                });
            }
            // The instrumented peer joins late, when the tracker ration
            // hurts the most.
            peers.push(BehaviorProfile {
                role: Role::Leecher,
                client: ClientKind::Mainline402,
                capacity: CapacityClass::Default,
                join_at: Duration::from_secs(120),
                seed_linger: None,
                depart_at: None,
                prepopulate: false,
                restart_after: None,
            });
            let local = peers.len() - 1;
            let spec = SwarmSpec {
                seed: cfg.seed,
                total_len: 64 * 256 * 1024,
                piece_len: 256 * 1024,
                duration: Duration::from_secs(2 * 3600),
                base_config: base,
                peers,
                local: Some(local),
                tracker_response_cap: Some(2), // a rationing tracker
                ..SwarmSpec::default()
            };
            let result = Swarm::new(spec).run();
            let trace = result.trace.expect("instrumented");
            // Peer-set size while the joiner is still downloading — after
            // that it idles as a seed in a draining swarm.
            let series = ReplicationSeries::from_trace(&trace).leecher_state(&trace);
            PexAblationRow {
                pex,
                mean_peer_set: series.mean_peer_set(),
                local_download_secs: result.completion[local].map(|t| t.as_secs_f64() - 120.0),
                completed_peers: result.completed_peers,
            }
        })
        .collect()
}

/// Result of one initial-seed policy in the super-seeding ablation.
#[derive(Debug, Clone)]
pub struct SuperSeedAblationRow {
    /// Super-seeding on?
    pub super_seed: bool,
    /// Seconds until the initial seed has served one full copy of the
    /// content (every piece's blocks sent at least once).
    pub first_copy_secs: Option<f64>,
    /// Duplicate fraction of the blocks the seed served before the first
    /// full copy was out (0 = no piece served twice before all served
    /// once — the §IV-A.4 goal).
    pub duplicate_ratio: f64,
    /// Swarm completions within the session.
    pub completed_peers: usize,
}

/// Ablation: super-seeding vs the plain (new) seed-state algorithm for
/// the *initial seed* of a flash crowd. §IV-A.4: "simple policies can be
/// implemented to guarantee that the ratio of duplicate pieces remains
/// low for the initial seed, e.g., the new choke algorithm in seed state
/// or the super seeding mode".
pub fn ablation_superseed(cfg: &RunConfig) -> Vec<SuperSeedAblationRow> {
    [false, true]
        .into_iter()
        .map(|super_seed| {
            let mut base = cfg.base_config.clone();
            base.super_seed = false; // only the instrumented seed differs
            let mut peers = Vec::new();
            peers.push(BehaviorProfile {
                role: if super_seed {
                    Role::SuperSeed
                } else {
                    Role::Seed
                },
                client: ClientKind::SuperSeeder,
                capacity: CapacityClass::Default, // the paper's 20 kB/s
                join_at: Duration::ZERO,
                seed_linger: None,
                depart_at: None,
                prepopulate: false,
                restart_after: None,
            });
            for i in 0..30 {
                peers.push(BehaviorProfile {
                    role: Role::Leecher,
                    client: ClientKind::Mainline402,
                    capacity: CapacityClass::Dsl,
                    join_at: Duration::from_secs(i),
                    seed_linger: Some(Duration::from_secs(1800)),
                    depart_at: None,
                    prepopulate: false, // a true flash crowd
                    restart_after: None,
                });
            }
            let geometry = bt_piece::Geometry::new(48 * 256 * 1024, 256 * 1024);
            let spec = SwarmSpec {
                seed: cfg.seed,
                total_len: geometry.total_len,
                piece_len: geometry.piece_len,
                duration: Duration::from_secs(4 * 3600),
                base_config: base,
                peers,
                local: Some(0), // instrument the initial seed itself
                available_fraction: 0.0,
                ..SwarmSpec::default()
            };
            let result = Swarm::new(spec).run();
            let trace = result.trace.expect("seed instrumented");
            // Per-piece blocks served; first-copy time = when every piece
            // has at least blocks_in_piece(p) blocks out.
            let n = geometry.num_pieces();
            let mut served = vec![0u64; n as usize];
            let mut remaining: i64 = (0..n).map(|p| i64::from(geometry.blocks_in_piece(p))).sum();
            let mut first_copy = None;
            let mut blocks_until_copy = 0u64;
            for (t, ev) in trace.iter() {
                if let bt_instrument::trace::TraceEvent::BlockSent { block, .. } = ev {
                    if first_copy.is_none() {
                        blocks_until_copy += 1;
                        let p = block.piece as usize;
                        served[p] += 1;
                        if served[p] <= u64::from(geometry.blocks_in_piece(block.piece)) {
                            remaining -= 1;
                            if remaining == 0 {
                                first_copy = Some(t.as_secs_f64());
                            }
                        }
                    }
                }
            }
            let total_needed: u64 = geometry.total_blocks();
            let duplicate_ratio = if first_copy.is_some() && blocks_until_copy > 0 {
                (blocks_until_copy - total_needed) as f64 / blocks_until_copy as f64
            } else {
                // Never completed a full copy: everything beyond the
                // distinct blocks served was duplicate effort.
                let distinct: u64 = served
                    .iter()
                    .enumerate()
                    .map(|(p, &c)| c.min(u64::from(geometry.blocks_in_piece(p as u32))))
                    .sum();
                let total: u64 = served.iter().sum();
                if total > 0 {
                    (total - distinct) as f64 / total as f64
                } else {
                    0.0
                }
            };
            SuperSeedAblationRow {
                super_seed,
                first_copy_secs: first_copy,
                duplicate_ratio,
                completed_peers: result.completed_peers,
            }
        })
        .collect()
}

/// Result of one Fast Extension variant.
#[derive(Debug, Clone)]
pub struct FastExtAblationRow {
    /// Fast Extension on?
    pub fast: bool,
    /// Seconds from the local peer's join to its first received block.
    pub time_to_first_block: Option<f64>,
    /// Seconds from join to the first completed piece.
    pub time_to_first_piece: Option<f64>,
    /// First-100-blocks slowdown (figure 8's headline number).
    pub first_blocks_slowdown: f64,
    /// Local download duration in seconds.
    pub local_download_secs: Option<f64>,
}

/// Ablation: the Fast Extension (BEP 6) against the paper's §VI *first
/// blocks problem*. The extension grants each neighbour an allowed-fast
/// set requestable while choked, so a fresh peer no longer waits for an
/// optimistic unchoke before its first bytes.
pub fn ablation_fastext(cfg: &RunConfig) -> Vec<FastExtAblationRow> {
    [false, true]
        .into_iter()
        .map(|fast| {
            let mut cfg = cfg.clone();
            cfg.base_config.fast_extension = fast;
            let outcome = run_scenario(&torrent(10), &cfg);
            let join = 90.0; // the local peer joins at t = 90 s
            let mut first_block = None;
            let mut first_piece = None;
            for (t, ev) in outcome.trace.iter() {
                match ev {
                    bt_instrument::trace::TraceEvent::BlockReceived { .. }
                        if first_block.is_none() =>
                    {
                        first_block = Some(t.as_secs_f64() - join);
                    }
                    bt_instrument::trace::TraceEvent::PieceCompleted { .. }
                        if first_piece.is_none() =>
                    {
                        first_piece = Some(t.as_secs_f64() - join);
                    }
                    _ => {}
                }
            }
            let (_, blocks) = interarrivals(&outcome);
            let local_done = outcome
                .result
                .completion
                .last()
                .copied()
                .flatten()
                .map(|t| t.as_secs_f64() - join);
            FastExtAblationRow {
                fast,
                time_to_first_block: first_block,
                time_to_first_piece: first_piece,
                first_blocks_slowdown: blocks.first_slowdown(),
                local_download_secs: local_done,
            }
        })
        .collect()
}

/// Result of one end-game variant.
#[derive(Debug, Clone)]
pub struct EndgameAblationRow {
    /// End game mode enabled?
    pub endgame: bool,
    /// Local peer download time in seconds.
    pub local_download_secs: Option<f64>,
    /// Largest block interarrival gap among the last 100 blocks (s) —
    /// the "termination idle time" end game was designed to remove.
    pub last_blocks_max_gap: f64,
}

/// Ablation: end game mode on vs. off (§II-C.1, §IV-A.3).
pub fn ablation_endgame(cfg: &RunConfig) -> Vec<EndgameAblationRow> {
    [true, false]
        .into_iter()
        .map(|endgame| {
            let mut cfg = cfg.clone();
            cfg.base_config.endgame_enabled = endgame;
            let outcome = run_scenario(&torrent(3), &cfg);
            let (_, blocks) = interarrivals(&outcome);
            let local_done = outcome
                .result
                .completion
                .last()
                .copied()
                .flatten()
                .map(|t| t.as_secs_f64() - 90.0);
            EndgameAblationRow {
                endgame,
                local_download_secs: local_done,
                last_blocks_max_gap: blocks.last.quantile(1.0),
            }
        })
        .collect()
}
