//! The Fast Extension (BEP 6): allowed-fast sets.
//!
//! The paper's §VI names "the time to deliver the first blocks of data"
//! as BitTorrent's main area of improvement: a fresh peer must wait to be
//! optimistically unchoked before it receives anything. The Fast
//! Extension — designed by the same mainline lineage shortly after the
//! paper's measurement window — attacks exactly that: each peer grants
//! every neighbour a small *allowed-fast set* of pieces that may be
//! requested **even while choked**, bootstrapping new arrivals.
//!
//! This module implements the canonical allowed-fast set generation of
//! BEP 6: iterate SHA-1 over `(ip & 0xFFFFFF00) || info_hash`, reading
//! 4-byte big-endian words as piece indices until `k` distinct pieces
//! are collected. The message codec lives in [`crate::message`]
//! (`Suggest`, `HaveAll`, `HaveNone`, `RejectRequest`, `AllowedFast`);
//! the engine-side behaviour in `bt-core`.

use crate::peer_id::IpAddr;
use crate::sha1::{sha1, Digest};

/// Default size of the allowed-fast set granted to each neighbour.
pub const DEFAULT_ALLOWED_FAST: u32 = 4;

/// Reserved-bits byte 7 flag advertising the Fast Extension in the
/// handshake (`reserved[7] & 0x04`).
pub const RESERVED_BIT: u8 = 0x04;

/// Compute the canonical BEP 6 allowed-fast set for a peer at `ip`.
///
/// Returns `k` distinct piece indices (all pieces if `k >= num_pieces`).
///
/// ```
/// use bt_wire::{allowed_fast_set, IpAddr, sha1};
/// let hash = sha1(b"torrent");
/// let set = allowed_fast_set(IpAddr(0x0A000001), &hash, 1000, 4);
/// assert_eq!(set.len(), 4);
/// // Deterministic: both endpoints compute the identical grant.
/// assert_eq!(set, allowed_fast_set(IpAddr(0x0A000001), &hash, 1000, 4));
/// ```
///
/// # Panics
/// Panics if `num_pieces == 0`.
pub fn allowed_fast_set(ip: IpAddr, info_hash: &Digest, num_pieces: u32, k: u32) -> Vec<u32> {
    assert!(num_pieces > 0, "torrent must have pieces");
    let mut out = Vec::with_capacity(k.min(num_pieces) as usize);
    if k == 0 {
        return out;
    }
    if k >= num_pieces {
        return (0..num_pieces).collect();
    }
    // x = 0xFFFFFF00 & ip, concatenated with the info hash.
    let mut x = Vec::with_capacity(24);
    x.extend_from_slice(&(ip.0 & 0xFFFF_FF00).to_be_bytes());
    x.extend_from_slice(info_hash);
    while (out.len() as u32) < k {
        let digest = sha1(&x);
        for chunk in digest.chunks_exact(4) {
            if (out.len() as u32) >= k {
                break;
            }
            let index = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) % num_pieces;
            if !out.contains(&index) {
                out.push(index);
            }
        }
        x = digest.to_vec();
    }
    out
}

/// True if the handshake reserved bytes advertise the Fast Extension.
pub fn supports_fast(reserved: &[u8; 8]) -> bool {
    reserved[7] & RESERVED_BIT != 0
}

/// Set the Fast Extension bit in a reserved-bytes array.
pub fn advertise_fast(reserved: &mut [u8; 8]) {
    reserved[7] |= RESERVED_BIT;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash() -> Digest {
        sha1(b"example torrent")
    }

    #[test]
    fn generates_k_distinct_pieces() {
        let set = allowed_fast_set(IpAddr(0x0A01_0203), &hash(), 1000, 7);
        assert_eq!(set.len(), 7);
        let mut sorted = set.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7, "indices must be distinct");
        assert!(set.iter().all(|&p| p < 1000));
    }

    #[test]
    fn deterministic_per_ip_and_hash() {
        let a = allowed_fast_set(IpAddr(0x0A01_0203), &hash(), 500, 4);
        let b = allowed_fast_set(IpAddr(0x0A01_0203), &hash(), 500, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn low_ip_byte_is_masked() {
        // BEP 6 masks the low byte: neighbouring addresses in a /24 get
        // the same set (prevents gaming via many addresses).
        let a = allowed_fast_set(IpAddr(0x0A01_0203), &hash(), 500, 4);
        let b = allowed_fast_set(IpAddr(0x0A01_02FF), &hash(), 500, 4);
        assert_eq!(a, b);
        let c = allowed_fast_set(IpAddr(0x0A01_0303), &hash(), 500, 4);
        assert_ne!(a, c, "different /24 should differ");
    }

    #[test]
    fn different_torrents_differ() {
        let a = allowed_fast_set(IpAddr(1), &sha1(b"t1"), 500, 4);
        let b = allowed_fast_set(IpAddr(1), &sha1(b"t2"), 500, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn k_saturates_at_num_pieces() {
        let set = allowed_fast_set(IpAddr(9), &hash(), 3, 10);
        assert_eq!(set, vec![0, 1, 2]);
        assert!(allowed_fast_set(IpAddr(9), &hash(), 3, 0).is_empty());
    }

    #[test]
    fn reserved_bit_roundtrip() {
        let mut reserved = [0u8; 8];
        assert!(!supports_fast(&reserved));
        advertise_fast(&mut reserved);
        assert!(supports_fast(&reserved));
        assert_eq!(reserved[7], 0x04);
    }
}
