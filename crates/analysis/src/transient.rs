//! Transient-phase analysis (§IV-A.2).
//!
//! The paper's second headline finding: torrents in a startup phase have
//! low entropy, and "the duration of this phase depends only on the
//! upload capacity of the source of the content" — the initial seed must
//! push one copy of every piece at its constant upload rate, while
//! already-available pieces replicate exponentially. This module
//! estimates, from an instrumented trace:
//!
//! * the observed transient duration (how long some piece stayed absent
//!   from the peer set);
//! * the rare-piece drain rate from the rarest-set series' linear slope
//!   (figure 3's key observation), convertible to an implied seed upload
//!   rate to compare against the configured capacity.

use crate::replication::ReplicationSeries;
use serde::{Deserialize, Serialize};

/// Summary of a trace's transient phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientSummary {
    /// Was the torrent ever observed in transient state (missing piece)?
    pub observed: bool,
    /// Last sample time (seconds) at which a piece was missing from the
    /// peer set; `None` if never. If this equals the series end, the
    /// torrent stayed transient throughout, like the paper's torrent 8.
    pub transient_until_secs: Option<f64>,
    /// Fraction of (non-empty-peer-set) samples with a missing piece.
    pub missing_fraction: f64,
    /// Slope of the rarest-set size over the transient window,
    /// pieces/second (negative = draining).
    pub drain_slope: f64,
    /// The drain slope converted to an implied source upload rate in
    /// bytes/second, given the piece size.
    pub implied_seed_rate: f64,
}

impl TransientSummary {
    /// Compute from a replication series and the torrent's piece size.
    pub fn from_series(series: &ReplicationSeries, piece_len: u32) -> TransientSummary {
        let informative: Vec<_> = series
            .points
            .iter()
            .filter(|p| p.peer_set_size > 0)
            .collect();
        let missing: Vec<_> = informative.iter().filter(|p| p.min == 0).collect();
        let observed = !missing.is_empty();
        let transient_until_secs = missing.last().map(|p| p.t_secs);
        let missing_fraction = if informative.is_empty() {
            0.0
        } else {
            missing.len() as f64 / informative.len() as f64
        };
        // Slope over the transient window only (afterwards the rarest set
        // reflects churn noise, not the drain).
        let window = ReplicationSeries {
            points: series
                .points
                .iter()
                .copied()
                .take_while(|p| transient_until_secs.is_some_and(|end| p.t_secs <= end))
                .collect(),
        };
        let drain_slope = window.rarest_set_slope();
        TransientSummary {
            observed,
            transient_until_secs,
            missing_fraction,
            drain_slope,
            implied_seed_rate: -drain_slope * f64::from(piece_len),
        }
    }

    /// The §IV-A.2.a lower bound on the transient duration: the time the
    /// initial seed needs to push one copy of `rare_pieces` pieces of
    /// `piece_len` bytes at `seed_upload` bytes/second.
    pub fn seed_capacity_bound(rare_pieces: u32, piece_len: u32, seed_upload: u64) -> f64 {
        f64::from(rare_pieces) * f64::from(piece_len) / seed_upload as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication::ReplicationPoint;

    fn series(points: Vec<(f64, u32, u32, u32)>) -> ReplicationSeries {
        ReplicationSeries {
            points: points
                .into_iter()
                .map(|(t, min, rarest, ps)| ReplicationPoint {
                    t_secs: t,
                    min,
                    mean: 1.0,
                    max: 10,
                    rarest_set_size: rarest,
                    peer_set_size: ps,
                })
                .collect(),
        }
    }

    #[test]
    fn steady_torrent_has_no_transient() {
        let s = series(vec![(10.0, 1, 3, 40), (20.0, 2, 2, 40)]);
        let t = TransientSummary::from_series(&s, 256 * 1024);
        assert!(!t.observed);
        assert_eq!(t.transient_until_secs, None);
        assert_eq!(t.missing_fraction, 0.0);
    }

    #[test]
    fn linear_drain_implies_seed_rate() {
        // 100 rare pieces draining 1 piece / 10 s at 256 kB pieces
        // ⇒ implied rate ≈ 26.2 kB/s.
        let pts: Vec<(f64, u32, u32, u32)> = (0..100)
            .map(|i| (f64::from(i) * 10.0, 0, 100 - i, 40))
            .collect();
        let s = series(pts);
        let t = TransientSummary::from_series(&s, 256 * 1024);
        assert!(t.observed);
        assert!((t.drain_slope + 0.1).abs() < 1e-9);
        assert!((t.implied_seed_rate - 0.1 * 256.0 * 1024.0).abs() < 1.0);
        assert_eq!(t.missing_fraction, 1.0);
    }

    #[test]
    fn transient_then_steady_reports_transition() {
        let s = series(vec![
            (10.0, 0, 50, 40),
            (20.0, 0, 20, 40),
            (30.0, 1, 3, 40),
            (40.0, 2, 2, 40),
        ]);
        let t = TransientSummary::from_series(&s, 256 * 1024);
        assert!(t.observed);
        assert_eq!(t.transient_until_secs, Some(20.0));
        assert!((t.missing_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_peer_set_samples_ignored() {
        let s = series(vec![(5.0, 0, 100, 0), (10.0, 1, 2, 40)]);
        let t = TransientSummary::from_series(&s, 256 * 1024);
        assert!(!t.observed, "empty-peer-set min=0 is vacuous");
    }

    #[test]
    fn capacity_bound_arithmetic() {
        // 863 pieces of 4 MB at 36 kB/s ≈ 26.6 h — the paper's torrent 8
        // never left transient state within its 8 h window, consistently.
        let bound = TransientSummary::seed_capacity_bound(863, 4 * 1024 * 1024, 36 * 1024);
        assert!(
            bound > 8.0 * 3600.0,
            "bound {bound} should exceed the 8 h session"
        );
    }
}
