//! Peer identification and de-duplication.
//!
//! §III-D: peers are uniquely identified by IP address and peer ID, but
//! the random part of the peer ID changes on restart, so the paper deems
//! two observations the same peer when they share `(IP, client ID)`. The
//! paper also filters "misbehaving" peers that stay under 10 seconds in
//! the peer set before computing entropy (§IV-A.1); that filter lives in
//! `bt-analysis`, built on the membership intervals this module produces.

use crate::trace::{PeerHandle, Trace, TraceEvent};
use bt_wire::peer_id::{IpAddr, PeerId};
use bt_wire::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A unique peer after (IP, client ID) de-duplication.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UniquePeer {
    /// The peer's IP address.
    pub ip: IpAddr,
    /// The client-ID prefix of its peer ID (e.g. `"M4-0-2--"`).
    pub client_id: String,
}

/// One connection's identity and membership interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Membership {
    /// Connection handle in the trace.
    pub handle: PeerHandle,
    /// De-duplicated peer identity.
    pub peer: UniquePeer,
    /// Raw peer ID presented in the handshake.
    pub peer_id: PeerId,
    /// When the connection entered the peer set.
    pub joined: Instant,
    /// When it left (session end if it never left).
    pub left: Instant,
    /// Pieces the peer had on arrival.
    pub pieces_on_arrival: u32,
}

impl Membership {
    /// Length of the membership interval in seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.left - self.joined).as_secs_f64()
    }

    /// True if the peer arrived already holding every piece (a seed).
    pub fn arrived_as_seed(&self, total_pieces: u32) -> bool {
        self.pieces_on_arrival == total_pieces
    }
}

/// The registry of connections observed in a trace.
#[derive(Debug, Clone, Default)]
pub struct PeerRegistry {
    /// All membership intervals, in join order.
    pub memberships: Vec<Membership>,
}

impl PeerRegistry {
    /// Build the registry by scanning a trace's join/leave events.
    pub fn from_trace(trace: &Trace) -> PeerRegistry {
        let mut open: HashMap<PeerHandle, usize> = HashMap::new();
        let mut memberships = Vec::new();
        for (t, ev) in trace.iter() {
            match ev {
                TraceEvent::PeerJoined {
                    peer,
                    ip,
                    peer_id,
                    pieces_on_arrival,
                    ..
                } => {
                    open.insert(*peer, memberships.len());
                    memberships.push(Membership {
                        handle: *peer,
                        peer: UniquePeer {
                            ip: *ip,
                            client_id: peer_id.client_id(),
                        },
                        peer_id: *peer_id,
                        joined: t,
                        left: trace.meta.session_end,
                        pieces_on_arrival: *pieces_on_arrival,
                    });
                }
                TraceEvent::PeerLeft { peer } => {
                    if let Some(idx) = open.remove(peer) {
                        memberships[idx].left = t;
                    }
                }
                _ => {}
            }
        }
        PeerRegistry { memberships }
    }

    /// Membership record for a connection handle (first match).
    pub fn membership(&self, handle: PeerHandle) -> Option<&Membership> {
        self.memberships.iter().find(|m| m.handle == handle)
    }

    /// Number of *unique* peers per §III-D's `(IP, client ID)` rule.
    pub fn unique_peers(&self) -> usize {
        let set: std::collections::HashSet<&UniquePeer> =
            self.memberships.iter().map(|m| &m.peer).collect();
        set.len()
    }

    /// Fraction of IP addresses associated with more than one peer ID —
    /// the paper reports 0–26 % with a mean around 9 % (§III-D, fn. 3).
    pub fn multi_id_ip_fraction(&self) -> f64 {
        let mut ids_per_ip: HashMap<IpAddr, std::collections::HashSet<PeerId>> = HashMap::new();
        for m in &self.memberships {
            ids_per_ip.entry(m.peer.ip).or_default().insert(m.peer_id);
        }
        if ids_per_ip.is_empty() {
            return 0.0;
        }
        let multi = ids_per_ip.values().filter(|s| s.len() > 1).count();
        multi as f64 / ids_per_ip.len() as f64
    }

    /// Memberships that last at least `min_secs` — the paper's 10-second
    /// noise filter (§IV-A.1).
    pub fn filtered(&self, min_secs: f64) -> Vec<&Membership> {
        self.memberships
            .iter()
            .filter(|m| m.duration_secs() >= min_secs)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceMeta;
    use bt_wire::peer_id::ClientKind;

    fn trace_with_peers() -> Trace {
        let meta = TraceMeta {
            torrent: "x".into(),
            torrent_id: 1,
            num_pieces: 10,
            num_blocks: 160,
            initial_seeds: 1,
            initial_leechers: 5,
            session_end: Instant::from_secs(1000),
            seed_at: None,
        };
        let mut tr = Trace::new(meta);
        // Peer 0: joins at 0, leaves at 5 (noise, < 10 s).
        tr.push(
            Instant::from_secs(0),
            TraceEvent::PeerJoined {
                peer: 0,
                ip: IpAddr(1),
                peer_id: PeerId::new(ClientKind::Azureus, 1),
                pieces_on_arrival: 0,
                total_pieces: 10,
            },
        );
        // Peer 1: joins at 0, stays to session end.
        tr.push(
            Instant::from_secs(0),
            TraceEvent::PeerJoined {
                peer: 1,
                ip: IpAddr(2),
                peer_id: PeerId::new(ClientKind::Mainline402, 2),
                pieces_on_arrival: 10,
                total_pieces: 10,
            },
        );
        tr.push(Instant::from_secs(5), TraceEvent::PeerLeft { peer: 0 });
        // Peer 0 reconnects with a fresh random suffix (client restart).
        tr.push(
            Instant::from_secs(20),
            TraceEvent::PeerJoined {
                peer: 2,
                ip: IpAddr(1),
                peer_id: PeerId::new(ClientKind::Azureus, 99),
                pieces_on_arrival: 3,
                total_pieces: 10,
            },
        );
        tr
    }

    #[test]
    fn membership_intervals() {
        let tr = trace_with_peers();
        let reg = PeerRegistry::from_trace(&tr);
        assert_eq!(reg.memberships.len(), 3);
        let m0 = reg.membership(0).unwrap();
        assert_eq!(m0.duration_secs(), 5.0);
        let m1 = reg.membership(1).unwrap();
        assert_eq!(
            m1.left,
            Instant::from_secs(1000),
            "open membership closes at session end"
        );
        assert!(m1.arrived_as_seed(10));
    }

    #[test]
    fn dedup_by_ip_and_client_id() {
        let tr = trace_with_peers();
        let reg = PeerRegistry::from_trace(&tr);
        // Handles 0 and 2 share (IP 1, Azureus) → same unique peer.
        assert_eq!(reg.unique_peers(), 2);
    }

    #[test]
    fn multi_id_fraction() {
        let tr = trace_with_peers();
        let reg = PeerRegistry::from_trace(&tr);
        // IP 1 carries two peer IDs, IP 2 one → 1/2.
        assert!((reg.multi_id_ip_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ten_second_filter() {
        let tr = trace_with_peers();
        let reg = PeerRegistry::from_trace(&tr);
        let kept = reg.filtered(10.0);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|m| m.handle != 0));
    }
}
