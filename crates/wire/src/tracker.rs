//! Tracker protocol messages.
//!
//! The tracker "keeps track of the peers currently involved in the torrent"
//! (§II-B). A joining peer announces and receives "a list of IP addresses of
//! peers ... typically 50 peers chosen at random". Peers re-announce every
//! 30 minutes in steady state, on completion, and when leaving; they
//! re-request if the peer set falls below 20.
//!
//! This module models the announce request/response pair, including the
//! bencoded compact response format a real tracker would send — so the
//! simulator's tracker speaks the genuine encoding.

use crate::bencode::{self, DictBuilder, Value};
use crate::peer_id::{IpAddr, PeerId};
use crate::sha1::Digest;
use serde::{Deserialize, Serialize};

/// Why a peer is announcing (BEP 3 `event` parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnnounceEvent {
    /// First announce on joining the torrent.
    Started,
    /// The peer finished downloading (leecher → seed).
    Completed,
    /// The peer is leaving the torrent.
    Stopped,
    /// Periodic 30-minute heartbeat.
    Periodic,
}

/// An announce request from a peer to the tracker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnounceRequest {
    /// The torrent being announced.
    pub info_hash: Digest,
    /// The announcing peer's ID.
    pub peer_id: PeerId,
    /// The announcing peer's address.
    pub ip: IpAddr,
    /// Listening port.
    pub port: u16,
    /// Total bytes uploaded since joining (§II-B: reported to the tracker).
    pub uploaded: u64,
    /// Total bytes downloaded since joining.
    pub downloaded: u64,
    /// Bytes still missing.
    pub left: u64,
    /// The announce event.
    pub event: AnnounceEvent,
    /// Number of peers wanted (mainline default: 50).
    pub num_want: u32,
}

/// Default number of peers requested from the tracker (§II-B).
pub const DEFAULT_NUM_WANT: u32 = 50;

/// One peer entry in an announce response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeerEntry {
    /// Peer address.
    pub ip: IpAddr,
    /// Peer port.
    pub port: u16,
}

/// An announce response from the tracker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnounceResponse {
    /// Seconds until the next periodic announce (1800 = 30 min).
    pub interval: u32,
    /// Number of seeds the tracker knows of (`complete`).
    pub complete: u32,
    /// Number of leechers the tracker knows of (`incomplete`).
    pub incomplete: u32,
    /// Random subset of peers.
    pub peers: Vec<PeerEntry>,
}

/// Standard re-announce interval: 30 minutes (§II-B).
pub const ANNOUNCE_INTERVAL_SECS: u32 = 30 * 60;

impl AnnounceResponse {
    /// Encode as the bencoded compact form (`peers` is a blob of 6-byte
    /// entries: 4 IP bytes + 2 port bytes, network order).
    pub fn encode_compact(&self) -> Vec<u8> {
        let mut blob = Vec::with_capacity(self.peers.len() * 6);
        for p in &self.peers {
            blob.extend_from_slice(&p.ip.0.to_be_bytes());
            blob.extend_from_slice(&p.port.to_be_bytes());
        }
        DictBuilder::new()
            .int("complete", i64::from(self.complete))
            .int("incomplete", i64::from(self.incomplete))
            .int("interval", i64::from(self.interval))
            .bytes("peers", blob)
            .build()
            .encode()
    }

    /// Decode the bencoded compact form.
    pub fn decode_compact(data: &[u8]) -> Result<AnnounceResponse, TrackerError> {
        let root = bencode::decode(data).map_err(TrackerError::Bencode)?;
        let interval = root
            .get("interval")
            .and_then(Value::as_int)
            .filter(|v| *v >= 0)
            .ok_or(TrackerError::MissingField("interval"))? as u32;
        let complete = root
            .get("complete")
            .and_then(Value::as_int)
            .unwrap_or(0)
            .max(0) as u32;
        let incomplete = root
            .get("incomplete")
            .and_then(Value::as_int)
            .unwrap_or(0)
            .max(0) as u32;
        let blob = root
            .get("peers")
            .and_then(Value::as_bytes)
            .ok_or(TrackerError::MissingField("peers"))?;
        if blob.len() % 6 != 0 {
            return Err(TrackerError::BadCompactPeers(blob.len()));
        }
        let peers = blob
            .chunks_exact(6)
            .map(|c| PeerEntry {
                ip: IpAddr(u32::from_be_bytes([c[0], c[1], c[2], c[3]])),
                port: u16::from_be_bytes([c[4], c[5]]),
            })
            .collect();
        Ok(AnnounceResponse {
            interval,
            complete,
            incomplete,
            peers,
        })
    }
}

/// Tracker protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackerError {
    /// The response bencoding was invalid.
    Bencode(bencode::BencodeError),
    /// A required key was absent.
    MissingField(&'static str),
    /// Compact peers blob not a multiple of 6 bytes.
    BadCompactPeers(usize),
    /// The tracker rejected the announce (unknown info-hash).
    UnknownTorrent,
}

impl std::fmt::Display for TrackerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrackerError::Bencode(e) => write!(f, "bencode error: {e}"),
            TrackerError::MissingField(k) => write!(f, "missing field `{k}`"),
            TrackerError::BadCompactPeers(n) => write!(f, "compact peers blob of {n} bytes"),
            TrackerError::UnknownTorrent => write!(f, "unknown torrent"),
        }
    }
}

impl std::error::Error for TrackerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let resp = AnnounceResponse {
            interval: ANNOUNCE_INTERVAL_SECS,
            complete: 3,
            incomplete: 97,
            peers: vec![
                PeerEntry {
                    ip: IpAddr(0x0A000001),
                    port: 6881,
                },
                PeerEntry {
                    ip: IpAddr(0xC0A80102),
                    port: 51413,
                },
            ],
        };
        let enc = resp.encode_compact();
        assert_eq!(AnnounceResponse::decode_compact(&enc).unwrap(), resp);
    }

    #[test]
    fn empty_peer_list_roundtrip() {
        let resp = AnnounceResponse {
            interval: 10,
            complete: 0,
            incomplete: 0,
            peers: vec![],
        };
        let enc = resp.encode_compact();
        assert_eq!(AnnounceResponse::decode_compact(&enc).unwrap(), resp);
    }

    #[test]
    fn rejects_misaligned_blob() {
        let enc = DictBuilder::new()
            .int("interval", 60)
            .bytes("peers", vec![1, 2, 3, 4, 5])
            .build()
            .encode();
        assert!(matches!(
            AnnounceResponse::decode_compact(&enc),
            Err(TrackerError::BadCompactPeers(5))
        ));
    }

    #[test]
    fn rejects_missing_interval() {
        let enc = DictBuilder::new().bytes("peers", vec![]).build().encode();
        assert!(matches!(
            AnnounceResponse::decode_compact(&enc),
            Err(TrackerError::MissingField("interval"))
        ));
    }
}
