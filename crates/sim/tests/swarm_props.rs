//! Property-based tests over whole swarms: for arbitrary (bounded)
//! populations and seeds, runs terminate and conserve the protocol's
//! basic accounting.

use bt_instrument::trace::TraceEvent;
use bt_sim::{BehaviorProfile, CapacityClass, Role, Swarm, SwarmSpec};
use bt_wire::peer_id::ClientKind;
use bt_wire::time::Duration;
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
struct PeerGene {
    role: u8,
    capacity: u8,
    join_secs: u64,
    prepopulate: bool,
}

fn arb_peer() -> impl Strategy<Value = PeerGene> {
    (0u8..4, 0u8..3, 0u64..120, any::<bool>()).prop_map(
        |(role, capacity, join_secs, prepopulate)| PeerGene {
            role,
            capacity,
            join_secs,
            prepopulate,
        },
    )
}

fn build(genes: &[PeerGene], seed: u64, pieces: u32) -> SwarmSpec {
    let mut peers = vec![BehaviorProfile::seed()]; // always one seed
    for g in genes {
        let role = match g.role {
            0 | 1 => Role::Leecher,
            2 => Role::FreeRider,
            _ => Role::Churner,
        };
        let capacity = match g.capacity {
            0 => CapacityClass::Dsl,
            1 => CapacityClass::Cable,
            _ => CapacityClass::Default,
        };
        peers.push(BehaviorProfile {
            role,
            client: ClientKind::Mainline402,
            capacity,
            join_at: Duration::from_secs(g.join_secs),
            seed_linger: Some(Duration::from_secs(600)),
            depart_at: None,
            prepopulate: g.prepopulate,
            restart_after: None,
        });
    }
    SwarmSpec {
        seed,
        total_len: u64::from(pieces) * 256 * 1024,
        piece_len: 256 * 1024,
        duration: Duration::from_secs(2500),
        peers,
        local: Some(1),
        ..SwarmSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any bounded random swarm terminates, and the instrumented trace
    /// obeys the core accounting invariants.
    #[test]
    fn random_swarms_conserve_accounting(
        genes in proptest::collection::vec(arb_peer(), 2..8),
        seed in 0u64..10_000,
        pieces in 4u32..10,
    ) {
        let spec = build(&genes, seed, pieces);
        let result = Swarm::new(spec).run();
        let trace = result.trace.expect("peer 1 instrumented");

        // Unique accepted blocks; pieces completed at most once; piece
        // completions require all their blocks.
        let mut blocks: HashSet<(u32, u32)> = HashSet::new();
        let mut completed: HashSet<u32> = HashSet::new();
        for (_, ev) in trace.iter() {
            match ev {
                TraceEvent::BlockReceived { block, .. } => {
                    prop_assert!(blocks.insert((block.piece, block.offset)),
                        "duplicate accepted block");
                }
                TraceEvent::PieceCompleted { piece } => {
                    prop_assert!(completed.insert(*piece), "piece completed twice");
                }
                _ => {}
            }
        }
        for piece in &completed {
            // 256 kB pieces = 16 blocks each.
            let have = blocks.iter().filter(|(p, _)| p == piece).count();
            prop_assert!(have >= 16, "piece {piece} completed with {have} blocks");
        }
        // If the local peer finished, it downloaded every piece it did
        // not already hold (prepopulated peers start with some pieces,
        // which never emit completion events).
        if result.completion[1].is_some() {
            if genes[0].prepopulate {
                prop_assert!(completed.len() as u32 <= pieces);
            } else {
                prop_assert_eq!(completed.len() as u32, pieces);
            }
        }
        // Tracker accounting: completions the tracker saw cannot exceed
        // the swarm's actual completions (a leecher may finish right at
        // session end without announcing, never the other way).
        prop_assert!(result.tracker_completed as usize <= result.completed_peers + 1);
    }

    /// Determinism holds for arbitrary configurations, not just the
    /// hand-picked ones in the unit tests.
    #[test]
    fn random_swarms_are_deterministic(
        genes in proptest::collection::vec(arb_peer(), 2..6),
        seed in 0u64..10_000,
    ) {
        let a = Swarm::new(build(&genes, seed, 6)).run();
        let b = Swarm::new(build(&genes, seed, 6)).run();
        prop_assert_eq!(a.events_processed, b.events_processed);
        prop_assert_eq!(a.completion, b.completion);
        prop_assert_eq!(a.trace.unwrap().events.len(), b.trace.unwrap().events.len());
    }
}
