//! The piece-selection strategy interface.
//!
//! A picker chooses *which piece to start next* from a given remote peer.
//! Block-level concerns (strict priority, end game) live in the
//! [`crate::scheduler`], which consults the picker only when it needs to
//! open a new piece — mirroring the structure of the mainline client.

use crate::availability::Availability;
use crate::bitfield::Bitfield;
use rand::Rng;

/// Everything a picker may look at when choosing a piece.
pub struct PickContext<'a> {
    /// The local peer's verified pieces.
    pub own: &'a Bitfield,
    /// The remote peer's advertised pieces.
    pub remote: &'a Bitfield,
    /// Copy counts over the local peer set.
    pub availability: &'a Availability,
    /// Pieces already being downloaded (a picker must not re-open these;
    /// the scheduler handles their remaining blocks via strict priority).
    pub in_progress: &'a dyn Fn(u32) -> bool,
    /// Number of pieces the local peer has completed so far. The rarest
    /// first picker switches from the *random first policy* to rarest
    /// first once this reaches 4 (§II-C.1, §III-C).
    pub downloaded_pieces: u32,
}

impl<'a> PickContext<'a> {
    /// Iterate over pieces the remote has, we lack, and are not in progress.
    pub fn candidates(&self) -> impl Iterator<Item = u32> + '_ {
        let in_progress = self.in_progress;
        self.remote
            .iter_ones_andnot(self.own)
            .filter(move |&i| !in_progress(i))
    }
}

/// A piece selection strategy.
pub trait PiecePicker: Send {
    /// Choose the next piece to open from this remote peer, or `None` if
    /// no candidate exists.
    fn pick(&mut self, ctx: &PickContext<'_>, rng: &mut dyn rand::RngCore) -> Option<u32>;

    /// Human-readable strategy name (for harness output).
    fn name(&self) -> &'static str;

    /// Inject global per-piece copy counts. Only the global-knowledge
    /// oracle baseline uses this; everything else ignores it.
    fn update_global(&mut self, _counts: &[u32]) {}
}

/// Uniformly random choice among `items`, using `rng`.
pub(crate) fn choose_random(items: &[u32], rng: &mut dyn rand::RngCore) -> Option<u32> {
    if items.is_empty() {
        None
    } else {
        let idx = rng.random_range(0..items.len());
        Some(items[idx])
    }
}

/// **Rarest first** — the piece selection strategy of BitTorrent (§II-C.1).
///
/// * *Random first policy*: while fewer than
///   [`RarestFirst::random_first_threshold`] pieces have been downloaded,
///   pick uniformly at random among candidates, so the new peer gets its
///   first pieces quickly and has something to reciprocate with.
/// * Afterwards: compute the rarest pieces among the candidates and pick
///   one of them at random.
///
/// Strict priority and end game mode are block-level policies implemented
/// by the scheduler, not here.
#[derive(Debug, Clone)]
pub struct RarestFirst {
    /// Pieces to download via the random first policy before switching to
    /// rarest first. Mainline default: 4 (§III-C).
    pub random_first_threshold: u32,
}

/// Mainline's default random-first threshold (§III-C).
pub const RANDOM_FIRST_THRESHOLD: u32 = 4;

impl Default for RarestFirst {
    fn default() -> Self {
        RarestFirst {
            random_first_threshold: RANDOM_FIRST_THRESHOLD,
        }
    }
}

impl PiecePicker for RarestFirst {
    fn pick(&mut self, ctx: &PickContext<'_>, rng: &mut dyn rand::RngCore) -> Option<u32> {
        if ctx.downloaded_pieces < self.random_first_threshold {
            let candidates: Vec<u32> = ctx.candidates().collect();
            return choose_random(&candidates, rng);
        }
        let rarest = ctx
            .availability
            .rarest_among_fields(ctx.remote, ctx.own, ctx.in_progress);
        choose_random(&rarest, rng)
    }

    fn name(&self) -> &'static str {
        "rarest-first"
    }
}

/// **Random** — the baseline rarest first is compared against in the
/// literature ([5], [9] in the paper): pick uniformly among candidates.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomPicker;

impl PiecePicker for RandomPicker {
    fn pick(&mut self, ctx: &PickContext<'_>, rng: &mut dyn rand::RngCore) -> Option<u32> {
        let candidates: Vec<u32> = ctx.candidates().collect();
        choose_random(&candidates, rng)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// **Sequential** — an intentionally poor baseline (streaming-style
/// in-order download). Useful to show how badly entropy degrades when the
/// piece choice ignores rarity entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialPicker;

impl PiecePicker for SequentialPicker {
    fn pick(&mut self, ctx: &PickContext<'_>, _rng: &mut dyn rand::RngCore) -> Option<u32> {
        ctx.candidates().min()
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

/// **Global-rarest oracle** — a global-knowledge upper bound in the spirit
/// of the analytical models the paper cites ([21], [25]): rarity is taken
/// from a *global* copy count over the whole torrent rather than the local
/// peer set. Behaves like an idealised network-coding-free optimum; the
/// simulator injects the global counts.
#[derive(Debug, Clone)]
pub struct GlobalRarest {
    global_counts: Vec<u32>,
}

impl GlobalRarest {
    /// Create with an initial global count per piece.
    pub fn new(num_pieces: u32) -> GlobalRarest {
        GlobalRarest {
            global_counts: vec![0; num_pieces as usize],
        }
    }

    /// Replace the global counts (called by the simulator each round).
    pub fn update_counts(&mut self, counts: &[u32]) {
        debug_assert_eq!(counts.len(), self.global_counts.len());
        self.global_counts.clear();
        self.global_counts.extend_from_slice(counts);
    }
}

impl PiecePicker for GlobalRarest {
    fn update_global(&mut self, counts: &[u32]) {
        self.update_counts(counts);
    }

    fn pick(&mut self, ctx: &PickContext<'_>, rng: &mut dyn rand::RngCore) -> Option<u32> {
        let mut best = u32::MAX;
        let mut rarest = Vec::new();
        for i in ctx.candidates() {
            let c = self.global_counts.get(i as usize).copied().unwrap_or(0);
            match c.cmp(&best) {
                std::cmp::Ordering::Less => {
                    best = c;
                    rarest.clear();
                    rarest.push(i);
                }
                std::cmp::Ordering::Equal => rarest.push(i),
                std::cmp::Ordering::Greater => {}
            }
        }
        choose_random(&rarest, rng)
    }

    fn name(&self) -> &'static str {
        "global-rarest"
    }
}

/// The strategies available to harnesses and examples, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PickerKind {
    /// [`RarestFirst`] with mainline defaults.
    RarestFirst,
    /// [`RandomPicker`].
    Random,
    /// [`SequentialPicker`].
    Sequential,
    /// [`GlobalRarest`].
    GlobalRarest,
}

impl PickerKind {
    /// Instantiate the picker for a torrent of `num_pieces`.
    pub fn build(&self, num_pieces: u32) -> Box<dyn PiecePicker> {
        match self {
            PickerKind::RarestFirst => Box::new(RarestFirst::default()),
            PickerKind::Random => Box::new(RandomPicker),
            PickerKind::Sequential => Box::new(SequentialPicker),
            PickerKind::GlobalRarest => Box::new(GlobalRarest::new(num_pieces)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn bf(len: u32, ones: &[u32]) -> Bitfield {
        let mut b = Bitfield::new(len);
        for &i in ones {
            b.set(i);
        }
        b
    }

    struct Setup {
        own: Bitfield,
        remote: Bitfield,
        av: Availability,
        in_progress: HashSet<u32>,
        downloaded: u32,
    }

    impl Setup {
        fn pick(&self, picker: &mut dyn PiecePicker, rng: &mut dyn rand::RngCore) -> Option<u32> {
            let in_prog = |p: u32| self.in_progress.contains(&p);
            let ctx = PickContext {
                own: &self.own,
                remote: &self.remote,
                availability: &self.av,
                in_progress: &in_prog,
                downloaded_pieces: self.downloaded,
            };
            picker.pick(&ctx, rng)
        }
    }

    fn setup() -> Setup {
        let n = 8;
        let mut av = Availability::new(n);
        // Peer set: piece 5 has 1 copy, pieces 0–4 have 3, 6–7 have 2.
        av.add_peer(&bf(n, &[0, 1, 2, 3, 4, 5, 6, 7]));
        av.add_peer(&bf(n, &[0, 1, 2, 3, 4, 6, 7]));
        av.add_peer(&bf(n, &[0, 1, 2, 3, 4]));
        Setup {
            own: bf(n, &[0]),
            remote: bf(n, &[0, 1, 2, 3, 4, 5, 6, 7]),
            av,
            in_progress: HashSet::new(),
            downloaded: 10,
        }
    }

    #[test]
    fn rarest_first_picks_the_rarest_candidate() {
        let s = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut picker = RarestFirst::default();
        // Piece 5 is the unique rarest candidate.
        for _ in 0..10 {
            assert_eq!(s.pick(&mut picker, &mut rng), Some(5));
        }
    }

    #[test]
    fn rarest_first_skips_in_progress_and_owned() {
        let mut s = setup();
        s.in_progress.insert(5);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut picker = RarestFirst::default();
        // Next-rarest are 6 and 7 (2 copies each).
        let picked = s.pick(&mut picker, &mut rng).unwrap();
        assert!(picked == 6 || picked == 7);
        // Own piece 0 is never picked.
        for _ in 0..20 {
            assert_ne!(s.pick(&mut picker, &mut rng), Some(0));
        }
    }

    #[test]
    fn random_first_policy_spreads_choices() {
        let mut s = setup();
        s.downloaded = 0; // below threshold → random first
        let mut rng = SmallRng::seed_from_u64(42);
        let mut picker = RarestFirst::default();
        let picks: HashSet<u32> = (0..100)
            .filter_map(|_| s.pick(&mut picker, &mut rng))
            .collect();
        // Random-first should not fixate on the rarest piece.
        assert!(picks.len() > 3, "random first policy chose only {picks:?}");
    }

    #[test]
    fn random_picker_ignores_rarity() {
        let s = setup();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut picker = RandomPicker;
        let picks: Vec<u32> = (0..200)
            .filter_map(|_| s.pick(&mut picker, &mut rng))
            .collect();
        let rare = picks.iter().filter(|&&p| p == 5).count();
        // With 7 candidates, piece 5 should appear ≈ 1/7 of the time.
        assert!(rare > 5 && rare < 80, "rare piece picked {rare}/200 times");
    }

    #[test]
    fn sequential_picks_lowest_index() {
        let s = setup();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut picker = SequentialPicker;
        assert_eq!(s.pick(&mut picker, &mut rng), Some(1));
    }

    #[test]
    fn global_rarest_uses_injected_counts() {
        let s = setup();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut picker = GlobalRarest::new(8);
        picker.update_counts(&[9, 9, 9, 9, 9, 9, 9, 1]);
        assert_eq!(s.pick(&mut picker, &mut rng), Some(7));
    }

    #[test]
    fn no_candidates_yields_none() {
        let mut s = setup();
        s.own = Bitfield::full(8);
        let mut rng = SmallRng::seed_from_u64(7);
        for kind in [
            PickerKind::RarestFirst,
            PickerKind::Random,
            PickerKind::Sequential,
            PickerKind::GlobalRarest,
        ] {
            let mut p = kind.build(8);
            assert_eq!(s.pick(p.as_mut(), &mut rng), None, "{}", p.name());
        }
    }
}
