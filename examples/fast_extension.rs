//! The Fast Extension (BEP 6) vs the paper's *first blocks problem*.
//!
//! §VI of the paper names "the time to deliver the first blocks of data"
//! as BitTorrent's main open improvement: a fresh peer must wait to be
//! optimistically unchoked before receiving anything. The Fast Extension
//! grants every neighbour a small allowed-fast set requestable **while
//! choked** — this example measures how much that buys a late joiner.
//!
//! ```sh
//! cargo run --release --example fast_extension
//! ```

use bt_repro::core::Config;
use bt_repro::instrument::trace::TraceEvent;
use bt_repro::sim::{BehaviorProfile, CapacityClass, Role, Swarm, SwarmSpec};
use bt_repro::wire::peer_id::ClientKind;
use bt_repro::wire::time::Duration;

fn run(fast: bool) -> (Option<f64>, Option<f64>) {
    let cfg = Config {
        fast_extension: fast,
        ..Config::default()
    };
    let mut peers = vec![BehaviorProfile::seed(), BehaviorProfile::seed()];
    for i in 0..20 {
        peers.push(BehaviorProfile {
            role: Role::Leecher,
            client: ClientKind::Mainline402,
            capacity: CapacityClass::Dsl,
            join_at: Duration::from_secs(i),
            seed_linger: Some(Duration::from_secs(900)),
            depart_at: None,
            prepopulate: true,
            restart_after: None,
        });
    }
    // The measured peer joins the busy swarm late, empty-handed.
    let join = 300u64;
    peers.push(BehaviorProfile {
        role: Role::Leecher,
        client: ClientKind::Mainline402,
        capacity: CapacityClass::Default,
        join_at: Duration::from_secs(join),
        seed_linger: None,
        depart_at: None,
        prepopulate: false,
        restart_after: None,
    });
    let local = peers.len() - 1;
    let spec = SwarmSpec {
        seed: 23,
        total_len: 64 * 256 * 1024,
        piece_len: 256 * 1024,
        duration: Duration::from_secs(3600),
        base_config: cfg,
        peers,
        local: Some(local),
        ..SwarmSpec::default()
    };
    let result = Swarm::new(spec).run();
    let trace = result.trace.expect("instrumented");
    let first = |pred: &dyn Fn(&TraceEvent) -> bool| {
        trace
            .iter()
            .find(|(_, e)| pred(e))
            .map(|(t, _)| t.as_secs_f64() - join as f64)
    };
    (
        first(&|e| matches!(e, TraceEvent::BlockReceived { .. })),
        first(&|e| matches!(e, TraceEvent::PieceCompleted { .. })),
    )
}

fn main() {
    println!("a fresh peer joins a 22-peer swarm at t = 300 s; how long to first data?\n");
    println!(
        "{:<16} {:>14} {:>14}",
        "protocol", "first block", "first piece"
    );
    println!("{}", "-".repeat(46));
    let (block_off, piece_off) = run(false);
    println!(
        "{:<16} {:>13.1}s {:>13.1}s",
        "base (4.0.2)",
        block_off.unwrap_or(f64::NAN),
        piece_off.unwrap_or(f64::NAN)
    );
    let (block_on, piece_on) = run(true);
    println!(
        "{:<16} {:>13.1}s {:>13.1}s",
        "fast extension",
        block_on.unwrap_or(f64::NAN),
        piece_on.unwrap_or(f64::NAN)
    );
    let (b0, b1) = (block_off.unwrap(), block_on.unwrap());
    assert!(
        b1 <= b0,
        "allowed-fast bootstrap should not slow the first block ({b1} vs {b0})"
    );
    println!(
        "\nallowed-fast sets let the newcomer pull its first block ×{:.1} sooner —\n\
         the protocol-level answer to the paper's §VI first blocks problem.",
        b0 / b1.max(0.1)
    );
}
