//! The discrete-event queue.
//!
//! A binary heap of timestamped events with a monotonically increasing
//! sequence number as tie-break, so same-instant events pop in insertion
//! order — this keeps per-link message delivery FIFO and makes whole-swarm
//! runs bit-for-bit reproducible for a given seed.

use bt_wire::time::Instant;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A queued entry: fire time, insertion sequence, payload.
struct Entry<E> {
    at: Instant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with FIFO tie-breaking.
///
/// ```
/// use bt_sim::EventQueue;
/// use bt_wire::time::Instant;
/// let mut q = EventQueue::new();
/// q.schedule(Instant::from_secs(5), "later");
/// q.schedule(Instant::from_secs(1), "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// assert_eq!(q.now(), Instant::from_secs(1)); // clock follows pops
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Instant,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Instant::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time (events cannot fire in
    /// the past).
    pub fn schedule(&mut self, at: Instant, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pop the earliest event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Peek at the next fire time without advancing the clock.
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_wire::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(5), "c");
        q.schedule(Instant::from_secs(1), "a");
        q.schedule(Instant::from_secs(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = Instant::from_secs(2);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(4), ());
        assert_eq!(q.now(), Instant::ZERO);
        assert_eq!(q.peek_time(), Some(Instant::from_secs(4)));
        q.pop();
        assert_eq!(q.now(), Instant::from_secs(4));
        // Scheduling relative to the new now is fine.
        q.schedule(q.now() + Duration::from_secs(1), ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(10), ());
        q.pop();
        q.schedule(Instant::from_secs(5), ());
    }
}
