//! Snapshot serializers: JSONL (one snapshot per line), Prometheus
//! text exposition, and a human-readable summary.
//!
//! All three walk the snapshot's already-sorted entries, so the output
//! is deterministic whenever the snapshot is.

use crate::registry::{HistogramSnapshot, Snapshot};

/// Append `s` to `out` with JSON string escaping.
pub(crate) fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_key(out: &mut String, name: &str, label: &str) {
    out.push('"');
    escape_json_into(out, name);
    if !label.is_empty() {
        out.push('{');
        escape_json_into(out, label);
        out.push('}');
    }
    out.push_str("\":");
}

impl Snapshot {
    /// Serialize as one JSON object (no trailing newline):
    ///
    /// ```json
    /// {"t":1000,"counters":{"core.inputs.tick":5,"net.bytes_in{peer0}":88},
    ///  "gauges":{"sim.live_peers":4},
    ///  "histograms":{"core.choke_round_us":{"count":3,"sum":42,"p50":10,
    ///    "p95":100,"p99":100,"buckets":[[10,2],[100,1]],"overflow":0}}}
    /// ```
    pub fn to_jsonl_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"t\":");
        out.push_str(&self.at_micros.to_string());
        out.push_str(",\"counters\":{");
        for (i, (name, label, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name, label);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, label, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name, label);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, label, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name, label);
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                h.count, h.sum, h.p50, h.p95, h.p99
            ));
            for (j, (le, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{le},{c}]"));
            }
            out.push_str(&format!("],\"overflow\":{}}}", h.overflow));
        }
        out.push_str("}}");
        out
    }
}

/// Sanitize a metric name for Prometheus: `[a-zA-Z0-9_:]` only, and
/// never starting with a digit (`[a-zA-Z_:]` leads the grammar).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escape a Prometheus label *value*: backslash, double quote and
/// newline must be backslash-escaped per the text exposition format.
fn prom_label_value(label: &str) -> String {
    label
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn prom_label(label: &str) -> String {
    if label.is_empty() {
        String::new()
    } else {
        format!("{{label=\"{}\"}}", prom_label_value(label))
    }
}

fn prom_histogram(out: &mut String, name: &str, label: &str, h: &HistogramSnapshot) {
    let n = prom_name(name);
    let label_prefix = if label.is_empty() {
        String::new()
    } else {
        format!("label=\"{}\",", prom_label_value(label))
    };
    let mut cumulative = 0u64;
    for (le, c) in &h.buckets {
        cumulative += c;
        out.push_str(&format!(
            "{n}_bucket{{{label_prefix}le=\"{le}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!(
        "{n}_bucket{{{label_prefix}le=\"+Inf\"}} {}\n",
        h.count
    ));
    out.push_str(&format!("{n}_sum{} {}\n", prom_label(label), h.sum));
    out.push_str(&format!("{n}_count{} {}\n", prom_label(label), h.count));
}

/// Render a snapshot in the Prometheus text exposition format, ready
/// for a future `/metrics` HTTP endpoint.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(512);
    let mut last_type: Option<(String, &str)> = None;
    let mut type_line = |out: &mut String, name: &str, kind: &'static str| {
        let n = prom_name(name);
        if last_type.as_ref().map(|(ln, lk)| (ln.as_str(), *lk)) != Some((n.as_str(), kind)) {
            out.push_str(&format!("# TYPE {n} {kind}\n"));
            last_type = Some((n, kind));
        }
    };
    for (name, label, v) in &snap.counters {
        type_line(&mut out, name, "counter");
        out.push_str(&format!("{}{} {v}\n", prom_name(name), prom_label(label)));
    }
    for (name, label, v) in &snap.gauges {
        type_line(&mut out, name, "gauge");
        out.push_str(&format!("{}{} {v}\n", prom_name(name), prom_label(label)));
    }
    for (name, label, h) in &snap.histograms {
        type_line(&mut out, name, "histogram");
        prom_histogram(&mut out, name, label, h);
    }
    out
}

/// Multi-line human-readable summary for end-of-run printouts. Labeled
/// counters are aggregated per name; histograms show count and
/// quantiles.
pub fn summary_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!("metrics @ {:.3}s\n", snap.at_micros as f64 / 1e6));
    let mut i = 0;
    while i < snap.counters.len() {
        let name = snap.counters[i].0;
        let mut total = 0u64;
        let mut labels = 0usize;
        while i < snap.counters.len() && snap.counters[i].0 == name {
            total += snap.counters[i].2;
            labels += 1;
            i += 1;
        }
        if labels > 1 {
            out.push_str(&format!("  {name} = {total} (over {labels} labels)\n"));
        } else {
            out.push_str(&format!("  {name} = {total}\n"));
        }
    }
    for (name, label, v) in &snap.gauges {
        if label.is_empty() {
            out.push_str(&format!("  {name} = {v}\n"));
        } else {
            out.push_str(&format!("  {name}{{{label}}} = {v}\n"));
        }
    }
    let mut i = 0;
    while i < snap.histograms.len() {
        let name = snap.histograms[i].0;
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut labels = 0usize;
        let first = i;
        while i < snap.histograms.len() && snap.histograms[i].0 == name {
            count += snap.histograms[i].2.count;
            sum += snap.histograms[i].2.sum;
            labels += 1;
            i += 1;
        }
        if labels > 1 {
            // Aggregated across labels: quantiles don't merge, so the
            // summary keeps only count and sum (like labeled counters).
            out.push_str(&format!(
                "  {name}: count={count} sum={sum} (over {labels} labels)\n"
            ));
        } else {
            let (_, label, h) = &snap.histograms[first];
            let shown = if label.is_empty() {
                name.to_string()
            } else {
                format!("{name}{{{label}}}")
            };
            out.push_str(&format!(
                "  {shown}: count={} p50={} p95={} p99={}\n",
                h.count, h.p50, h.p95, h.p99
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{buckets, Registry};
    use crate::time::TimeSource;

    fn sample() -> Snapshot {
        let reg = Registry::new(TimeSource::manual());
        reg.counter("core.inputs.tick").add(5);
        reg.counter_with("net.bytes_in", "peer0").add(88);
        reg.gauge("sim.live_peers").set(4);
        let h = reg.histogram("core.choke_round_us", buckets::LATENCY_US);
        h.observe(5);
        h.observe(5);
        h.observe(60);
        reg.time().advance_to(1000);
        reg.snapshot()
    }

    #[test]
    fn jsonl_is_deterministic_and_wellformed() {
        let line = sample().to_jsonl_line();
        assert_eq!(line, sample().to_jsonl_line());
        assert_eq!(
            line,
            "{\"t\":1000,\"counters\":{\"core.inputs.tick\":5,\"net.bytes_in{peer0}\":88},\
             \"gauges\":{\"sim.live_peers\":4},\
             \"histograms\":{\"core.choke_round_us\":{\"count\":3,\"sum\":70,\
             \"p50\":10,\"p95\":100,\"p99\":100,\"buckets\":[[10,2],[100,1]],\"overflow\":0}}}"
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE core_inputs_tick counter\ncore_inputs_tick 5\n"));
        assert!(text.contains("net_bytes_in{label=\"peer0\"} 88"));
        assert!(text.contains("# TYPE sim_live_peers gauge\nsim_live_peers 4\n"));
        assert!(text.contains("core_choke_round_us_bucket{le=\"10\"} 2"));
        assert!(text.contains("core_choke_round_us_bucket{le=\"100\"} 3"));
        assert!(text.contains("core_choke_round_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("core_choke_round_us_sum 70"));
        assert!(text.contains("core_choke_round_us_count 3"));
    }

    #[test]
    fn summary_aggregates_labels() {
        let reg = Registry::new(TimeSource::manual());
        reg.counter_with("net.bytes_in", "p0").add(10);
        reg.counter_with("net.bytes_in", "p1").add(20);
        let text = summary_text(&reg.snapshot());
        assert!(text.contains("net.bytes_in = 30 (over 2 labels)"));
    }

    #[test]
    fn summary_aggregates_labeled_histograms() {
        let reg = Registry::new(TimeSource::manual());
        for (label, v) in [("p0", 5u64), ("p0", 60), ("p1", 5)] {
            reg.histogram_with("net.rtt_us", label, buckets::LATENCY_US)
                .observe(v);
        }
        reg.histogram("core.round_us", buckets::LATENCY_US)
            .observe(9);
        let text = summary_text(&reg.snapshot());
        // Labeled histograms collapse to one line, no per-label quantiles.
        assert!(
            text.contains("net.rtt_us: count=3 sum=70 (over 2 labels)"),
            "{text}"
        );
        assert!(!text.contains("net.rtt_us{p0}"), "{text}");
        // Unlabeled histograms keep their quantiles.
        assert!(text.contains("core.round_us: count=1 p50=10"), "{text}");
    }

    #[test]
    fn prom_name_never_starts_with_a_digit() {
        let reg = Registry::new(TimeSource::manual());
        reg.counter("404s").add(2);
        reg.counter("net.ok").add(1);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE _404s counter\n_404s 2\n"), "{text}");
        assert!(text.contains("net_ok 1"), "{text}");
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        escape_json_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn jsonl_escapes_label_values_with_quotes_and_newlines() {
        let reg = Registry::new(TimeSource::manual());
        reg.counter_with("evil", "we\"ird\nlabel\ttab").add(1);
        let line = reg.snapshot().to_jsonl_line();
        // The raw control characters must not survive into the output.
        assert!(!line.contains('\n'));
        assert!(!line.contains('\t'));
        assert!(line.contains("\"evil{we\\\"ird\\nlabel\\ttab}\":1"));
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let reg = Registry::new(TimeSource::manual());
        reg.counter_with("evil_total", "a\"b\\c\nd").add(2);
        let h = reg.histogram_with("evil_us", "a\"b\\c\nd", buckets::LATENCY_US);
        h.observe(5);
        let text = to_prometheus(&reg.snapshot());
        assert!(!text.contains("c\nd"), "raw newline leaked: {text:?}");
        assert!(text.contains("evil_total{label=\"a\\\"b\\\\c\\nd\"} 2"));
        assert!(text.contains("evil_us_bucket{label=\"a\\\"b\\\\c\\nd\",le=\"10\"} 1"));
    }

    #[test]
    fn empty_histogram_serializes_without_quantiles() {
        let reg = Registry::new(TimeSource::manual());
        reg.histogram("idle_us", buckets::LATENCY_US);
        let snap = reg.snapshot();
        let line = snap.to_jsonl_line();
        assert!(line.contains(
            "\"idle_us\":{\"count\":0,\"sum\":0,\"p50\":0,\"p95\":0,\"p99\":0,\
             \"buckets\":[],\"overflow\":0}"
        ));
        let text = to_prometheus(&snap);
        assert!(text.contains("idle_us_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("idle_us_sum 0"));
        assert!(text.contains("idle_us_count 0"));
    }
}
