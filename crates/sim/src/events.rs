//! The discrete-event queue.
//!
//! Timestamped events with a monotonically increasing sequence number as
//! tie-break, so same-instant events pop in insertion order — this keeps
//! per-link message delivery FIFO and makes whole-swarm runs bit-for-bit
//! reproducible for a given seed.
//!
//! [`EventQueue`] is a calendar queue: a wheel of fixed-width time
//! buckets in front of an overflow heap, with the bucket currently being
//! drained held in a small binary heap. Near-term scheduling and popping
//! are O(1) amortized instead of the O(log n) of a single global heap —
//! the difference that keeps 100k-peer swarms at millions of events per
//! second. The original single-heap queue is retained as
//! [`HeapEventQueue`]; `tests/event_queue_diff.rs` holds the two to
//! identical pop order (including same-instant ties and pushes
//! interleaved with pops), which is the determinism contract every golden
//! trace relies on.

use bt_wire::time::Instant;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A queued entry: fire time, insertion sequence, payload.
struct Entry<E> {
    at: Instant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Calendar bucket width: 2^10 µs ≈ 1 ms, matching the link-latency and
/// sub-round timescale where most simulator events cluster.
const SLOT_BITS: u32 = 10;
/// Number of wheel slots; the wheel spans `NUM_SLOTS << SLOT_BITS` µs
/// (≈ 4 s). Anything scheduled further out waits in the overflow heap.
const NUM_SLOTS: u64 = 4096;

/// Earliest-first event queue with FIFO tie-breaking.
///
/// ```
/// use bt_sim::EventQueue;
/// use bt_wire::time::Instant;
/// let mut q = EventQueue::new();
/// q.schedule(Instant::from_secs(5), "later");
/// q.schedule(Instant::from_secs(1), "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// assert_eq!(q.now(), Instant::from_secs(1)); // clock follows pops
/// ```
///
/// # Invariants
///
/// With `slot(t) = t / 2^SLOT_BITS` and `cur_slot` the slot being
/// drained:
///
/// * `cur` holds every pending event with `slot(at) <= cur_slot`, as a
///   heap on (time, seq) — so pops within the current bucket are exact;
/// * `wheel[s % NUM_SLOTS]` holds the events of slot `s` for
///   `cur_slot < s < cur_slot + NUM_SLOTS` — strictly later than
///   everything in `cur`;
/// * `overflow` holds events with `slot(at) >= cur_slot + NUM_SLOTS`,
///   migrated into the wheel as the window advances — strictly later
///   than everything in the wheel.
///
/// Every ordering decision goes through a heap keyed on (time, seq), so
/// pop order is identical to a single global heap's.
pub struct EventQueue<E> {
    cur: BinaryHeap<Entry<E>>,
    cur_slot: u64,
    wheel: Vec<Vec<Entry<E>>>,
    wheel_count: usize,
    overflow: BinaryHeap<Entry<E>>,
    len: usize,
    next_seq: u64,
    now: Instant,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            cur: BinaryHeap::new(),
            cur_slot: 0,
            wheel: (0..NUM_SLOTS).map(|_| Vec::new()).collect(),
            wheel_count: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
            now: Instant::ZERO,
        }
    }

    fn slot(at: Instant) -> u64 {
        at.0 >> SLOT_BITS
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time (events cannot fire in
    /// the past).
    pub fn schedule(&mut self, at: Instant, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let entry = Entry { at, seq, event };
        let s = Self::slot(at);
        if s <= self.cur_slot {
            self.cur.push(entry);
        } else if s < self.cur_slot + NUM_SLOTS {
            self.wheel[(s % NUM_SLOTS) as usize].push(entry);
            self.wheel_count += 1;
        } else {
            self.overflow.push(entry);
        }
    }

    /// Advance `cur_slot` to the next slot holding events and refill
    /// `cur` from the wheel and the overflow horizon. Caller guarantees
    /// `cur` is empty and at least one event is pending.
    fn advance(&mut self) {
        debug_assert!(self.cur.is_empty() && self.len > 0);
        let target = if self.wheel_count > 0 {
            // All wheel events live within NUM_SLOTS of cur_slot, so this
            // scan terminates; each slot is passed over at most once per
            // window traversal.
            let mut s = self.cur_slot + 1;
            while self.wheel[(s % NUM_SLOTS) as usize].is_empty() {
                s += 1;
            }
            s
        } else {
            Self::slot(self.overflow.peek().expect("len > 0").at)
        };
        self.cur_slot = target;
        let bucket = &mut self.wheel[(target % NUM_SLOTS) as usize];
        self.wheel_count -= bucket.len();
        self.cur.extend(bucket.drain(..));
        // The window moved forward: migrate overflow events that now fall
        // inside it, restoring the overflow-beyond-horizon invariant.
        while self
            .overflow
            .peek()
            .is_some_and(|e| Self::slot(e.at) < target + NUM_SLOTS)
        {
            let entry = self.overflow.pop().unwrap();
            let s = Self::slot(entry.at);
            if s <= target {
                self.cur.push(entry);
            } else {
                self.wheel[(s % NUM_SLOTS) as usize].push(entry);
                self.wheel_count += 1;
            }
        }
        debug_assert!(!self.cur.is_empty());
    }

    /// Pop the earliest event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        if self.len == 0 {
            return None;
        }
        if self.cur.is_empty() {
            self.advance();
        }
        let e = self.cur.pop().expect("advance refills cur");
        self.len -= 1;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Peek at the next fire time without advancing the clock.
    ///
    /// Takes `&mut self` because peeking may rotate the calendar window
    /// to the next occupied bucket (the clock and pop order are
    /// unaffected).
    pub fn peek_time(&mut self) -> Option<Instant> {
        if self.len == 0 {
            return None;
        }
        if self.cur.is_empty() {
            self.advance();
        }
        self.cur.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The original single-`BinaryHeap` event queue, kept as the reference
/// implementation the calendar [`EventQueue`] is differentially tested
/// against. Same API, obviously-correct ordering.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Instant,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Instant::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time.
    pub fn schedule(&mut self, at: Instant, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pop the earliest event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Peek at the next fire time without advancing the clock.
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_wire::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(5), "c");
        q.schedule(Instant::from_secs(1), "a");
        q.schedule(Instant::from_secs(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = Instant::from_secs(2);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(4), ());
        assert_eq!(q.now(), Instant::ZERO);
        assert_eq!(q.peek_time(), Some(Instant::from_secs(4)));
        q.pop();
        assert_eq!(q.now(), Instant::from_secs(4));
        // Scheduling relative to the new now is fine.
        q.schedule(q.now() + Duration::from_secs(1), ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(10), ());
        q.pop();
        q.schedule(Instant::from_secs(5), ());
    }

    #[test]
    fn far_future_events_cross_the_overflow_horizon() {
        let mut q = EventQueue::new();
        // Spread events well past the wheel span (≈ 4 s) in shuffled
        // order, plus same-slot companions scheduled later.
        let times: Vec<u64> = vec![3_600_000_000, 7, 4_194_304, 1, 9_999_999, 4_194_305, 0];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Instant(t), i);
        }
        let mut sorted: Vec<u64> = times.clone();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.0)).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn push_during_pop_lands_in_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant(10), "first");
        q.schedule(Instant(5_000_000), "far");
        let (t, _) = q.pop().unwrap();
        // Same instant as the popped event: fires before "far".
        q.schedule(t, "again");
        q.schedule(Instant(20), "soon");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["again", "soon", "far"]);
    }

    #[test]
    fn peek_after_empty_bucket_rotates_window() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_secs(100), ());
        assert_eq!(q.peek_time(), Some(Instant::from_secs(100)));
        assert_eq!(q.len(), 1);
        // Scheduling after the peek-driven rotation must still be exact.
        q.schedule(Instant::from_secs(100), ());
        q.schedule(Instant::from_secs(200), ());
        assert_eq!(q.pop().unwrap().0, Instant::from_secs(100));
        assert_eq!(q.pop().unwrap().0, Instant::from_secs(100));
        assert_eq!(q.pop().unwrap().0, Instant::from_secs(200));
        assert!(q.is_empty());
    }

    #[test]
    fn heap_reference_queue_behaves_identically() {
        let mut q = HeapEventQueue::new();
        q.schedule(Instant::from_secs(5), "c");
        q.schedule(Instant::from_secs(1), "a");
        assert_eq!(q.peek_time(), Some(Instant::from_secs(1)));
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.now(), Instant::from_secs(1));
        assert_eq!(q.len(), 1);
    }
}
