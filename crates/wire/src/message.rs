//! Peer wire protocol messages and their binary codec (BEP 3).
//!
//! Every message is length-prefixed: `<u32 length><u8 id><payload>`.
//! A length of zero is a keep-alive. The paper's instrumentation logs
//! "each BitTorrent message sent or received with the detailed content of
//! the message" (§III-C); [`Message`] is the type those logs carry.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// A block request or transfer descriptor: piece index, byte offset within
/// the piece, and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockRef {
    /// Piece index.
    pub piece: u32,
    /// Byte offset of the block within the piece.
    pub offset: u32,
    /// Block length in bytes (16 kB except possibly the final block).
    pub length: u32,
}

impl BlockRef {
    /// Block index within its piece assuming 16 kB blocks.
    pub fn block_index(&self) -> u32 {
        self.offset / crate::metainfo::BLOCK_LEN
    }
}

/// A peer wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Zero-length heartbeat; sent every 2 minutes of silence.
    KeepAlive,
    /// The sender will not upload to the receiver.
    Choke,
    /// The sender may upload to the receiver.
    Unchoke,
    /// The sender wants pieces the receiver has.
    Interested,
    /// The sender wants nothing the receiver has.
    NotInterested,
    /// The sender completed (and verified) piece `0`.
    Have(u32),
    /// The sender's complete piece map, sent once after the handshake.
    Bitfield(Vec<u8>),
    /// Request one block.
    Request(BlockRef),
    /// One block of data. The simulator carries real bytes end-to-end so
    /// hash verification is exercised.
    Piece {
        /// Which block this payload is.
        block: BlockRef,
        /// The payload (empty in the simulator's virtual data mode).
        data: Bytes,
    },
    /// Cancel a pending request (used heavily by end game mode, §II-C.1).
    Cancel(BlockRef),
    /// DHT port announcement (present in the wire format; unused here).
    Port(u16),
    /// Fast Extension (BEP 6): advise the peer to fetch this piece.
    Suggest(u32),
    /// Fast Extension: the sender has every piece (replaces `bitfield`).
    HaveAll,
    /// Fast Extension: the sender has no pieces (replaces `bitfield`).
    HaveNone,
    /// Fast Extension: the request will not be served (explicit, instead
    /// of the silent drop the base protocol uses).
    RejectRequest(BlockRef),
    /// Fast Extension: the receiver may request this piece while choked.
    AllowedFast(u32),
    /// Extension protocol (BEP 10) frame: inner extension ID plus a
    /// bencoded payload (`ext_id` 0 is the extension handshake).
    Extended {
        /// Inner extension message ID.
        ext_id: u8,
        /// Bencoded payload.
        payload: Vec<u8>,
    },
}

/// Message IDs on the wire.
mod id {
    pub const CHOKE: u8 = 0;
    pub const UNCHOKE: u8 = 1;
    pub const INTERESTED: u8 = 2;
    pub const NOT_INTERESTED: u8 = 3;
    pub const HAVE: u8 = 4;
    pub const BITFIELD: u8 = 5;
    pub const REQUEST: u8 = 6;
    pub const PIECE: u8 = 7;
    pub const CANCEL: u8 = 8;
    pub const PORT: u8 = 9;
    pub const SUGGEST: u8 = 13;
    pub const HAVE_ALL: u8 = 14;
    pub const HAVE_NONE: u8 = 15;
    pub const REJECT_REQUEST: u8 = 16;
    pub const ALLOWED_FAST: u8 = 17;
    pub const EXTENDED: u8 = 20;
}

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum CodecError {
    /// Declared length exceeds the configured maximum frame size.
    FrameTooLarge { length: usize, max: usize },
    /// Message ID unknown.
    UnknownId(u8),
    /// Payload length inconsistent with the message ID.
    BadPayload { id: u8, length: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::FrameTooLarge { length, max } => {
                write!(f, "frame of {length} bytes exceeds max {max}")
            }
            CodecError::UnknownId(id) => write!(f, "unknown message id {id}"),
            CodecError::BadPayload { id, length } => {
                write!(f, "bad payload length {length} for message id {id}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl Message {
    /// A compact kind tag for logging and statistics.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::KeepAlive => MessageKind::KeepAlive,
            Message::Choke => MessageKind::Choke,
            Message::Unchoke => MessageKind::Unchoke,
            Message::Interested => MessageKind::Interested,
            Message::NotInterested => MessageKind::NotInterested,
            Message::Have(_) => MessageKind::Have,
            Message::Bitfield(_) => MessageKind::Bitfield,
            Message::Request(_) => MessageKind::Request,
            Message::Piece { .. } => MessageKind::Piece,
            Message::Cancel(_) => MessageKind::Cancel,
            Message::Port(_) => MessageKind::Port,
            Message::Suggest(_) => MessageKind::Suggest,
            Message::HaveAll => MessageKind::HaveAll,
            Message::HaveNone => MessageKind::HaveNone,
            Message::RejectRequest(_) => MessageKind::RejectRequest,
            Message::AllowedFast(_) => MessageKind::AllowedFast,
            Message::Extended { .. } => MessageKind::Extended,
        }
    }

    /// Size of the encoded frame in bytes (length prefix included). Used by
    /// the bandwidth model to charge links for control traffic.
    pub fn wire_len(&self) -> usize {
        4 + match self {
            Message::KeepAlive => 0,
            Message::Choke | Message::Unchoke | Message::Interested | Message::NotInterested => 1,
            Message::Have(_) => 5,
            Message::Bitfield(bits) => 1 + bits.len(),
            Message::Request(_) | Message::Cancel(_) => 13,
            Message::Piece { data, .. } => 9 + data.len(),
            Message::Port(_) => 3,
            Message::Suggest(_) | Message::AllowedFast(_) => 5,
            Message::HaveAll | Message::HaveNone => 1,
            Message::RejectRequest(_) => 13,
            Message::Extended { payload, .. } => 2 + payload.len(),
        }
    }

    /// Encode this message into `buf` as a length-prefixed frame.
    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            Message::KeepAlive => buf.put_u32(0),
            Message::Choke => simple(buf, id::CHOKE),
            Message::Unchoke => simple(buf, id::UNCHOKE),
            Message::Interested => simple(buf, id::INTERESTED),
            Message::NotInterested => simple(buf, id::NOT_INTERESTED),
            Message::Have(piece) => {
                buf.put_u32(5);
                buf.put_u8(id::HAVE);
                buf.put_u32(*piece);
            }
            Message::Bitfield(bits) => {
                buf.put_u32(1 + bits.len() as u32);
                buf.put_u8(id::BITFIELD);
                buf.put_slice(bits);
            }
            Message::Request(b) => block_ref(buf, id::REQUEST, b),
            Message::Cancel(b) => block_ref(buf, id::CANCEL, b),
            Message::Piece { block, data } => {
                debug_assert_eq!(block.length as usize, data.len());
                buf.put_u32(9 + data.len() as u32);
                buf.put_u8(id::PIECE);
                buf.put_u32(block.piece);
                buf.put_u32(block.offset);
                buf.put_slice(data);
            }
            Message::Port(port) => {
                buf.put_u32(3);
                buf.put_u8(id::PORT);
                buf.put_u16(*port);
            }
            Message::Suggest(piece) => {
                buf.put_u32(5);
                buf.put_u8(id::SUGGEST);
                buf.put_u32(*piece);
            }
            Message::HaveAll => simple(buf, id::HAVE_ALL),
            Message::HaveNone => simple(buf, id::HAVE_NONE),
            Message::RejectRequest(b) => block_ref(buf, id::REJECT_REQUEST, b),
            Message::AllowedFast(piece) => {
                buf.put_u32(5);
                buf.put_u8(id::ALLOWED_FAST);
                buf.put_u32(*piece);
            }
            Message::Extended { ext_id, payload } => {
                buf.put_u32(2 + payload.len() as u32);
                buf.put_u8(id::EXTENDED);
                buf.put_u8(*ext_id);
                buf.put_slice(payload);
            }
        }
    }

    /// Encode to a fresh buffer.
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        self.encode(&mut buf);
        buf.to_vec()
    }
}

fn simple(buf: &mut BytesMut, msg_id: u8) {
    buf.put_u32(1);
    buf.put_u8(msg_id);
}

fn block_ref(buf: &mut BytesMut, msg_id: u8, b: &BlockRef) {
    buf.put_u32(13);
    buf.put_u8(msg_id);
    buf.put_u32(b.piece);
    buf.put_u32(b.offset);
    buf.put_u32(b.length);
}

/// Message kind without payload, for compact trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// See [`Message::KeepAlive`].
    KeepAlive,
    /// See [`Message::Choke`].
    Choke,
    /// See [`Message::Unchoke`].
    Unchoke,
    /// See [`Message::Interested`].
    Interested,
    /// See [`Message::NotInterested`].
    NotInterested,
    /// See [`Message::Have`].
    Have,
    /// See [`Message::Bitfield`].
    Bitfield,
    /// See [`Message::Request`].
    Request,
    /// See [`Message::Piece`].
    Piece,
    /// See [`Message::Cancel`].
    Cancel,
    /// See [`Message::Port`].
    Port,
    /// See [`Message::Suggest`].
    Suggest,
    /// See [`Message::HaveAll`].
    HaveAll,
    /// See [`Message::HaveNone`].
    HaveNone,
    /// See [`Message::RejectRequest`].
    RejectRequest,
    /// See [`Message::AllowedFast`].
    AllowedFast,
    /// See [`Message::Extended`].
    Extended,
}

/// Streaming decoder: feed bytes in, pop complete messages out.
///
/// Incomplete frames are buffered; malformed frames return an error and
/// leave the decoder unusable (a real client drops the connection).
#[derive(Debug)]
pub struct Decoder {
    buf: BytesMut,
    max_frame: usize,
}

/// Default maximum frame: a 16 kB block plus header, with slack for large
/// bitfields of very big torrents.
pub const DEFAULT_MAX_FRAME: usize = 512 * 1024;

impl Default for Decoder {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_FRAME)
    }
}

impl Decoder {
    /// Create a decoder with the given maximum frame size.
    pub fn new(max_frame: usize) -> Decoder {
        Decoder {
            buf: BytesMut::new(),
            max_frame,
        }
    }

    /// Append raw bytes received from the transport.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete message, if any.
    pub fn next_message(&mut self) -> Result<Option<Message>, CodecError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let length =
            u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if length > self.max_frame {
            return Err(CodecError::FrameTooLarge {
                length,
                max: self.max_frame,
            });
        }
        if self.buf.len() < 4 + length {
            return Ok(None);
        }
        self.buf.advance(4);
        if length == 0 {
            return Ok(Some(Message::KeepAlive));
        }
        let mut payload = self.buf.split_to(length);
        let msg_id = payload.get_u8();
        let body_len = payload.len();
        let msg = match msg_id {
            id::CHOKE => expect_empty(msg_id, body_len, Message::Choke)?,
            id::UNCHOKE => expect_empty(msg_id, body_len, Message::Unchoke)?,
            id::INTERESTED => expect_empty(msg_id, body_len, Message::Interested)?,
            id::NOT_INTERESTED => expect_empty(msg_id, body_len, Message::NotInterested)?,
            id::HAVE => {
                if body_len != 4 {
                    return Err(CodecError::BadPayload {
                        id: msg_id,
                        length: body_len,
                    });
                }
                Message::Have(payload.get_u32())
            }
            id::BITFIELD => Message::Bitfield(payload.to_vec()),
            id::REQUEST | id::CANCEL | id::REJECT_REQUEST => {
                if body_len != 12 {
                    return Err(CodecError::BadPayload {
                        id: msg_id,
                        length: body_len,
                    });
                }
                let b = BlockRef {
                    piece: payload.get_u32(),
                    offset: payload.get_u32(),
                    length: payload.get_u32(),
                };
                match msg_id {
                    id::REQUEST => Message::Request(b),
                    id::CANCEL => Message::Cancel(b),
                    _ => Message::RejectRequest(b),
                }
            }
            id::SUGGEST | id::ALLOWED_FAST => {
                if body_len != 4 {
                    return Err(CodecError::BadPayload {
                        id: msg_id,
                        length: body_len,
                    });
                }
                let piece = payload.get_u32();
                if msg_id == id::SUGGEST {
                    Message::Suggest(piece)
                } else {
                    Message::AllowedFast(piece)
                }
            }
            id::HAVE_ALL => expect_empty(msg_id, body_len, Message::HaveAll)?,
            id::HAVE_NONE => expect_empty(msg_id, body_len, Message::HaveNone)?,
            id::EXTENDED => {
                if body_len < 1 {
                    return Err(CodecError::BadPayload {
                        id: msg_id,
                        length: body_len,
                    });
                }
                let ext_id = payload.get_u8();
                Message::Extended {
                    ext_id,
                    payload: payload.to_vec(),
                }
            }
            id::PIECE => {
                if body_len < 8 {
                    return Err(CodecError::BadPayload {
                        id: msg_id,
                        length: body_len,
                    });
                }
                let piece = payload.get_u32();
                let offset = payload.get_u32();
                let data = payload.freeze();
                Message::Piece {
                    block: BlockRef {
                        piece,
                        offset,
                        length: data.len() as u32,
                    },
                    data,
                }
            }
            id::PORT => {
                if body_len != 2 {
                    return Err(CodecError::BadPayload {
                        id: msg_id,
                        length: body_len,
                    });
                }
                Message::Port(payload.get_u16())
            }
            other => return Err(CodecError::UnknownId(other)),
        };
        Ok(Some(msg))
    }
}

fn expect_empty(msg_id: u8, body_len: usize, msg: Message) -> Result<Message, CodecError> {
    if body_len != 0 {
        Err(CodecError::BadPayload {
            id: msg_id,
            length: body_len,
        })
    } else {
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let encoded = msg.encode_to_vec();
        assert_eq!(
            encoded.len(),
            msg.wire_len(),
            "wire_len must match encoding"
        );
        let mut dec = Decoder::default();
        dec.feed(&encoded);
        let out = dec.next_message().unwrap().expect("complete message");
        assert_eq!(out, msg);
        assert!(dec.next_message().unwrap().is_none());
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn roundtrip_all_kinds() {
        roundtrip(Message::KeepAlive);
        roundtrip(Message::Choke);
        roundtrip(Message::Unchoke);
        roundtrip(Message::Interested);
        roundtrip(Message::NotInterested);
        roundtrip(Message::Have(12345));
        roundtrip(Message::Bitfield(vec![0b1010_1010, 0xFF, 0x00]));
        roundtrip(Message::Request(BlockRef {
            piece: 1,
            offset: 16384,
            length: 16384,
        }));
        roundtrip(Message::Cancel(BlockRef {
            piece: 9,
            offset: 0,
            length: 500,
        }));
        roundtrip(Message::Piece {
            block: BlockRef {
                piece: 3,
                offset: 32768,
                length: 5,
            },
            data: Bytes::from_static(b"hello"),
        });
        roundtrip(Message::Port(6881));
    }

    #[test]
    fn roundtrip_fast_extension_messages() {
        roundtrip(Message::Suggest(77));
        roundtrip(Message::HaveAll);
        roundtrip(Message::HaveNone);
        roundtrip(Message::RejectRequest(BlockRef {
            piece: 2,
            offset: 16384,
            length: 16384,
        }));
        roundtrip(Message::AllowedFast(0));
    }

    #[test]
    fn roundtrip_extended_messages() {
        roundtrip(Message::Extended {
            ext_id: 0,
            payload: b"d1:md6:ut_pexi1eee".to_vec(),
        });
        roundtrip(Message::Extended {
            ext_id: 1,
            payload: vec![],
        });
    }

    #[test]
    fn fragmented_delivery() {
        let msg = Message::Request(BlockRef {
            piece: 7,
            offset: 0,
            length: 16384,
        });
        let bytes = msg.encode_to_vec();
        let mut dec = Decoder::default();
        for b in &bytes[..bytes.len() - 1] {
            dec.feed(std::slice::from_ref(b));
            assert!(dec.next_message().unwrap().is_none());
        }
        dec.feed(&bytes[bytes.len() - 1..]);
        assert_eq!(dec.next_message().unwrap(), Some(msg));
    }

    #[test]
    fn pipelined_messages() {
        let msgs = vec![
            Message::Interested,
            Message::Have(3),
            Message::KeepAlive,
            Message::Unchoke,
        ];
        let mut all = Vec::new();
        for m in &msgs {
            all.extend_from_slice(&m.encode_to_vec());
        }
        let mut dec = Decoder::default();
        dec.feed(&all);
        for m in &msgs {
            assert_eq!(dec.next_message().unwrap().as_ref(), Some(m));
        }
        assert!(dec.next_message().unwrap().is_none());
    }

    #[test]
    fn rejects_oversized_frame() {
        let mut dec = Decoder::new(16);
        dec.feed(&1000u32.to_be_bytes());
        assert!(matches!(
            dec.next_message(),
            Err(CodecError::FrameTooLarge {
                length: 1000,
                max: 16
            })
        ));
    }

    #[test]
    fn rejects_unknown_id() {
        let mut dec = Decoder::default();
        dec.feed(&[0, 0, 0, 1, 42]);
        assert!(matches!(dec.next_message(), Err(CodecError::UnknownId(42))));
    }

    #[test]
    fn rejects_bad_payload_lengths() {
        // Have with a 2-byte payload.
        let mut dec = Decoder::default();
        dec.feed(&[0, 0, 0, 3, id::HAVE, 1, 2]);
        assert!(matches!(
            dec.next_message(),
            Err(CodecError::BadPayload { .. })
        ));
        // Choke with a payload.
        let mut dec = Decoder::default();
        dec.feed(&[0, 0, 0, 2, id::CHOKE, 0]);
        assert!(matches!(
            dec.next_message(),
            Err(CodecError::BadPayload { .. })
        ));
        // Piece with fewer than 8 payload bytes.
        let mut dec = Decoder::default();
        dec.feed(&[0, 0, 0, 5, id::PIECE, 0, 0, 0, 0]);
        assert!(matches!(
            dec.next_message(),
            Err(CodecError::BadPayload { .. })
        ));
    }

    #[test]
    fn block_index_uses_16k_blocks() {
        let b = BlockRef {
            piece: 0,
            offset: 3 * 16384,
            length: 16384,
        };
        assert_eq!(b.block_index(), 3);
    }
}
