//! Choke-equilibrium analysis — the §IV-B.2 future-work item.
//!
//! "We have seen that the choke algorithm fosters reciprocation. One
//! important reason is that each peer elects a small subset of peers to
//! upload data to. This stability improves the level of reciprocation.
//! … Our guess is that the choke algorithm leads to an equilibrium in
//! the peer selection. The exploration of this equilibrium is
//! fundamental to the understanding of the choke algorithm efficiency."
//!
//! This module quantifies that stability from the §III-C choke log:
//! unchoke-slot *tenures* (how long a peer stays continuously unchoked),
//! the per-round churn of the active set, and the concentration of
//! unchoke time over peers. A stable leecher-state equilibrium shows as
//! long regular-slot tenures and low round-to-round churn; the new
//! seed-state algorithm shows the opposite by design (service-time
//! rotation).

use crate::intervals::{Interval, IntervalBuilder};
use crate::stats::{percentile_sorted, Cdf};
use bt_instrument::trace::{Trace, TraceEvent};
use bt_wire::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stability metrics for one local-peer state window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquilibriumSummary {
    /// Number of unchoke tenures observed (one per continuous unchoke).
    pub tenures: usize,
    /// Tenure-length CDF in seconds.
    pub tenure_cdf: Cdf,
    /// Mean tenure in seconds.
    pub mean_tenure_secs: f64,
    /// Fraction of total unchoke-time held by the top 3 peers — the
    /// "small subset elected to upload to" (§IV-B.2).
    pub top3_unchoke_share: f64,
    /// Mean number of unchoke-set changes per 10-second rechoke round
    /// (0 = perfectly stable active set, ≥ 2 = heavy rotation).
    pub churn_per_round: f64,
}

fn summarise(
    tenures_by_peer: &HashMap<u32, Vec<Interval>>,
    window_start: Instant,
    window_end: Instant,
    transitions: usize,
) -> EquilibriumSummary {
    let mut lengths: Vec<f64> = Vec::new();
    let mut per_peer_total: Vec<f64> = Vec::new();
    for ivs in tenures_by_peer.values() {
        let mut total = 0.0;
        for iv in ivs {
            let s = iv.start.max(window_start);
            let e = iv.end.min(window_end);
            if e > s {
                let len = (e - s).as_secs_f64();
                lengths.push(len);
                total += len;
            }
        }
        if total > 0.0 {
            per_peer_total.push(total);
        }
    }
    lengths.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean = if lengths.is_empty() {
        0.0
    } else {
        lengths.iter().sum::<f64>() / lengths.len() as f64
    };
    per_peer_total.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let total_time: f64 = per_peer_total.iter().sum();
    let top3: f64 = per_peer_total.iter().take(3).sum();
    let rounds = ((window_end.saturating_since(window_start)).as_secs_f64() / 10.0).max(1.0);
    EquilibriumSummary {
        tenures: lengths.len(),
        mean_tenure_secs: mean,
        tenure_cdf: Cdf::new(lengths),
        top3_unchoke_share: if total_time > 0.0 {
            top3 / total_time
        } else {
            0.0
        },
        churn_per_round: transitions as f64 / rounds,
    }
}

/// Compute the equilibrium summary for the leecher-state and seed-state
/// windows of a trace.
pub fn equilibrium(trace: &Trace) -> (EquilibriumSummary, EquilibriumSummary) {
    let seed_at = trace.meta.seed_at.unwrap_or(trace.meta.session_end);
    let end = trace.meta.session_end;

    let mut builders: HashMap<u32, IntervalBuilder> = HashMap::new();
    let mut transitions_ls = 0usize;
    let mut transitions_ss = 0usize;
    for (t, ev) in trace.iter() {
        if let TraceEvent::LocalChoke { peer, choked, .. } = ev {
            builders.entry(*peer).or_default().transition(t, !*choked);
            if t < seed_at {
                transitions_ls += 1;
            } else {
                transitions_ss += 1;
            }
        }
    }
    let tenures: HashMap<u32, Vec<Interval>> = builders
        .into_iter()
        .map(|(h, b)| (h, b.finish(end)))
        .collect();

    let ls = summarise(&tenures, Instant::ZERO, seed_at, transitions_ls);
    let ss = summarise(&tenures, seed_at, end, transitions_ss);
    (ls, ss)
}

impl EquilibriumSummary {
    /// Median tenure in seconds.
    pub fn median_tenure_secs(&self) -> f64 {
        self.tenure_cdf.median()
    }

    /// 90th-percentile tenure — long tails mean stable elected partners.
    pub fn p90_tenure_secs(&self) -> f64 {
        let mut v: Vec<f64> = (0..self.tenure_cdf.len())
            .map(|i| {
                self.tenure_cdf
                    .quantile(i as f64 / (self.tenure_cdf.len().max(2) - 1) as f64)
            })
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        percentile_sorted(&v, 0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_instrument::trace::{TraceMeta, UnchokeRole};

    fn meta(seed_at: u64) -> TraceMeta {
        TraceMeta {
            torrent: "q".into(),
            torrent_id: 7,
            num_pieces: 10,
            num_blocks: 160,
            initial_seeds: 1,
            initial_leechers: 5,
            session_end: Instant::from_secs(1000),
            seed_at: Some(Instant::from_secs(seed_at)),
        }
    }

    fn unchoke(tr: &mut Trace, t: u64, peer: u32) {
        tr.push(
            Instant::from_secs(t),
            TraceEvent::LocalChoke {
                peer,
                choked: false,
                role: Some(UnchokeRole::Regular),
            },
        );
    }

    fn choke(tr: &mut Trace, t: u64, peer: u32) {
        tr.push(
            Instant::from_secs(t),
            TraceEvent::LocalChoke {
                peer,
                choked: true,
                role: None,
            },
        );
    }

    #[test]
    fn stable_partner_shows_long_tenure() {
        let mut tr = Trace::new(meta(500));
        unchoke(&mut tr, 0, 1); // held for the entire 500 s leecher state
        unchoke(&mut tr, 100, 2);
        choke(&mut tr, 130, 2); // a brief optimistic visit
        let (ls, _ss) = equilibrium(&tr);
        assert_eq!(ls.tenures, 2);
        // Peer 1's open tenure is clamped to the LS window (500 s).
        assert_eq!(ls.tenure_cdf.quantile(1.0), 500.0);
        assert_eq!(ls.tenure_cdf.quantile(0.0), 30.0);
        assert!(ls.top3_unchoke_share > 0.99, "two peers → top3 covers all");
    }

    #[test]
    fn churn_counts_transitions_per_round() {
        let mut tr = Trace::new(meta(100)); // 10 rechoke rounds in LS
        for r in 0..10u64 {
            unchoke(&mut tr, r * 10, (r % 3) as u32);
            choke(&mut tr, r * 10 + 5, (r % 3) as u32);
        }
        let (ls, _) = equilibrium(&tr);
        assert_eq!(ls.tenures, 10);
        assert!(
            (ls.churn_per_round - 2.0).abs() < 1e-9,
            "{}",
            ls.churn_per_round
        );
        assert!((ls.mean_tenure_secs - 5.0).abs() < 1e-9);
    }

    #[test]
    fn windows_split_at_seed_transition() {
        let mut tr = Trace::new(meta(100));
        unchoke(&mut tr, 0, 1);
        choke(&mut tr, 50, 1); // LS tenure: 50 s
        unchoke(&mut tr, 200, 2);
        choke(&mut tr, 260, 2); // SS tenure: 60 s
        let (ls, ss) = equilibrium(&tr);
        assert_eq!(ls.tenures, 1);
        assert_eq!(ss.tenures, 1);
        assert_eq!(ls.tenure_cdf.quantile(0.5), 50.0);
        assert_eq!(ss.tenure_cdf.quantile(0.5), 60.0);
    }

    #[test]
    fn tenure_spanning_transition_counts_in_both() {
        let mut tr = Trace::new(meta(100));
        unchoke(&mut tr, 50, 3); // unchoked 50 → session end (1000)
        let (ls, ss) = equilibrium(&tr);
        assert_eq!(ls.tenure_cdf.quantile(0.5), 50.0); // 50..100
        assert_eq!(ss.tenure_cdf.quantile(0.5), 900.0); // 100..1000
    }

    #[test]
    fn empty_trace_is_quiet() {
        let tr = Trace::new(meta(100));
        let (ls, ss) = equilibrium(&tr);
        assert_eq!(ls.tenures, 0);
        assert_eq!(ss.tenures, 0);
        assert_eq!(ls.churn_per_round, 0.0);
        assert_eq!(ss.top3_unchoke_share, 0.0);
    }
}
