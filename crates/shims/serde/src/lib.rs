//! Offline stand-in for `serde` (JSON-only).
//!
//! The real serde separates the data model from formats; this workspace
//! only ever serialises to and from JSON (`serde_json` shim), so the two
//! traits here are JSON-direct:
//!
//! * [`Serialize::serialize_json`] appends compact JSON to a `String`;
//! * [`Deserialize::deserialize_json`] reads from a parsed [`json::Value`].
//!
//! The derive macros (re-exported from the `serde_derive` shim) generate
//! serde-compatible shapes: structs as objects, newtypes transparently,
//! enums externally tagged (`"Unit"`, `{"Variant": payload}`), tuples and
//! arrays as JSON arrays, maps as objects. Missing `Option` fields
//! deserialise to `None` (via [`Deserialize::absent`]), matching serde's
//! observable behaviour for the types this workspace declares.

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::{Error, Value};

/// Serialise `self` as compact JSON appended to `out`.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Reconstruct `Self` from a parsed JSON tree.
pub trait Deserialize: Sized {
    /// Read `Self` from `v`.
    fn deserialize_json(v: &Value) -> Result<Self, Error>;

    /// Value to use when an object field is missing entirely.
    /// `None` (the default) makes the field required; `Option<T>`
    /// overrides this to produce `None`, serde-style.
    fn absent() -> Option<Self> {
        None
    }
}

// ---------------------------------------------------------------------
// Helpers used by the derive-generated code
// ---------------------------------------------------------------------

/// Write `"name":` (object key plus colon). `name` must not need escaping
/// (derive only passes Rust identifiers).
pub fn ser_key(out: &mut String, name: &str) {
    out.push('"');
    out.push_str(name);
    out.push_str("\":");
}

/// Write a JSON string literal.
pub fn ser_str(out: &mut String, s: &str) {
    json::write_escaped(out, s);
}

/// View `v` as an object, or error mentioning `ctx`.
pub fn as_object<'v>(v: &'v Value, ctx: &str) -> Result<&'v BTreeMap<String, Value>, Error> {
    match v {
        Value::Object(m) => Ok(m),
        other => Err(Error::expected("object", ctx, other)),
    }
}

/// View `v` as an array of exactly `len` elements, or error.
pub fn as_array<'v>(v: &'v Value, len: usize, ctx: &str) -> Result<&'v [Value], Error> {
    match v {
        Value::Array(a) if a.len() == len => Ok(a),
        Value::Array(a) => Err(Error::msg(format!(
            "{ctx}: expected array of {len} elements, got {}",
            a.len()
        ))),
        other => Err(Error::expected("array", ctx, other)),
    }
}

/// Deserialise the field `name` of `obj`; missing fields fall back to
/// [`Deserialize::absent`].
pub fn de_field<T: Deserialize>(obj: &BTreeMap<String, Value>, name: &str) -> Result<T, Error> {
    match obj.get(name) {
        Some(v) => T::deserialize_json(v),
        None => T::absent().ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
    }
}

/// Deserialise element `i` of `arr`.
pub fn de_elem<T: Deserialize>(arr: &[Value], i: usize) -> Result<T, Error> {
    match arr.get(i) {
        Some(v) => T::deserialize_json(v),
        None => Err(Error::msg(format!("missing tuple element {i}"))),
    }
}

/// Split an externally-tagged enum value into `(variant, payload)`:
/// a bare string is a unit variant, a single-key object a data variant.
pub fn variant_of<'v>(v: &'v Value, ctx: &str) -> Result<(&'v str, Option<&'v Value>), Error> {
    match v {
        Value::Str(s) => Ok((s.as_str(), None)),
        Value::Object(m) if m.len() == 1 => {
            let (k, inner) = m.iter().next().expect("len checked");
            Ok((k.as_str(), Some(inner)))
        }
        other => Err(Error::expected("enum variant", ctx, other)),
    }
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{}` prints the shortest string that round-trips, and prints
            // integral values without a fractional part; our parser reads
            // either spelling back into the same f64.
            out.push_str(&format!("{self}"));
        } else {
            // serde_json maps non-finite floats to null.
            out.push_str("null");
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::expected("number", "f64", v))
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out)
    }
}

impl Deserialize for f32 {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize_json(v)? as f32)
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped(out, self);
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_json(other)?)),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::deserialize_json).collect(),
            other => Err(Error::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out)
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_json(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of {N} elements, got {len}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_json(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$(stringify!($n)),+].len();
                let a = as_array(v, LEN, "tuple")?;
                Ok(($(de_elem::<$t>(a, $n)?,)+))
            }
        }
    )*};
}
ser_de_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(out, k);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_json(v)?)))
                .collect(),
            other => Err(Error::expected("object", "BTreeMap", other)),
        }
    }
}

impl Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        json::write_value(out, self);
    }
}

impl Deserialize for Value {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
