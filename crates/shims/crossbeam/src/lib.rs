//! Offline stand-in for `crossbeam`.
//!
//! Scoped threads landed in std in Rust 1.63 with the same shape
//! crossbeam pioneered, so `crossbeam::thread::scope` here simply
//! adapts `std::thread::scope` to crossbeam's `Result`-returning
//! signature. The `channel` module fronts `std::sync::mpsc`.

/// Scoped threads: spawn borrows non-`'static` data, joined at scope end.
pub mod thread {
    pub use std::thread::{Scope, ScopedJoinHandle};

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Matches crossbeam's signature: the `Result` is `Err`
    /// (with a panic payload) if any unjoined child panicked.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        // std::thread::scope re-raises child panics after joining; catch
        // them to reproduce crossbeam's Result-based reporting.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| std::thread::scope(f)))
    }
}

/// Multi-producer channels (std mpsc under crossbeam's names).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1, 2, 3];
        let sum = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|s| {
            for &v in &data {
                s.spawn(|| {
                    sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 6);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|| panic!("child panic"));
        });
        assert!(r.is_err());
    }
}
