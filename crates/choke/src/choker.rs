//! Peer selection strategies (choke algorithms).
//!
//! §II-C.2 describes two algorithms the reproduction must carry, plus two
//! baselines the paper argues against:
//!
//! * [`LeecherChoker`] — leecher state: every 10 s the 3 interested peers
//!   with the fastest download rate *to* the local peer are unchoked
//!   (regular unchokes, RU); every 30 s one additional interested peer is
//!   unchoked at random (the optimistic unchoke, OU).
//! * [`SeedChokerNew`] — seed state, mainline ≥ 4.0.0: peers are ordered
//!   by the time of their last unchoke, most recent first; for two
//!   consecutive 10 s periods the first 3 stay unchoked plus one random
//!   choked-and-interested peer (SRU); every third period the first 4 stay
//!   unchoked. Service time is equalised; upload rate is ignored.
//! * [`SeedChokerOld`] — seed state before 4.0.0: same shape as leecher
//!   state but ordered by upload rate *from* the local peer. The paper
//!   shows this favours fast (possibly free-riding) downloaders.
//! * [`TitForTatChoker`] — the bit-level tit-for-tat the literature
//!   proposed ([5], [10], [15]): refuse upload once the byte deficit
//!   exceeds a threshold. The paper's §IV-B.1 argues this strands excess
//!   capacity; the ablation bench demonstrates it.
//!
//! A choker is a pure decision procedure: given a snapshot of the peer set
//! it returns the set of peers that should be unchoked now. The engine
//! diffs that against current state to emit `choke`/`unchoke` messages.

use bt_wire::time::{Duration, Instant};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Handle identifying a remote peer inside one engine (dense index).
pub type PeerKey = u32;

/// Rechoke period: 10 seconds (§II-C.2).
pub const RECHOKE_PERIOD: Duration = Duration(10_000_000);

/// Number of regular unchoke slots (§II-C.2: "the 3 fastest peers").
pub const REGULAR_SLOTS: usize = 3;

/// Snub threshold: a peer that has unchoked the local peer but delivered
/// no block for this long is *snubbed* (mainline anti-snubbing) and loses
/// regular-unchoke eligibility, keeping only the optimistic path.
pub const SNUB_THRESHOLD: Duration = Duration(60_000_000);

/// Snapshot of one remote peer, input to a rechoke round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerSnapshot {
    /// Engine handle for the peer.
    pub key: PeerKey,
    /// Is the remote peer interested in the local peer?
    pub interested: bool,
    /// Is the peer currently unchoked by the local peer?
    pub unchoked: bool,
    /// Estimated download rate from this peer to the local peer (B/s).
    pub download_rate: f64,
    /// Estimated upload rate from the local peer to this peer (B/s).
    pub upload_rate: f64,
    /// When the local peer last unchoked this peer, if ever.
    pub last_unchoked: Option<Instant>,
    /// Lifetime bytes the local peer uploaded to this peer.
    pub uploaded_to: u64,
    /// Lifetime bytes the local peer downloaded from this peer.
    pub downloaded_from: u64,
    /// The peer is snubbing the local peer (unchoked it but sent nothing
    /// for [`SNUB_THRESHOLD`]); it only qualifies for optimistic unchokes.
    pub snubbed: bool,
}

/// The decision of a rechoke round: exactly which peers are unchoked,
/// with the role each slot plays (for instrumentation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChokeDecision {
    /// Peers holding a regular-unchoke slot (rate-ordered, leecher state)
    /// or a seed-kept-unchoke slot (seed state).
    pub regular: Vec<PeerKey>,
    /// The optimistic-unchoke (leecher) or seed-random-unchoke (seed)
    /// holder, if one was selected this round.
    pub optimistic: Option<PeerKey>,
}

impl ChokeDecision {
    /// All unchoked peers, regular slots first.
    pub fn unchoked(&self) -> Vec<PeerKey> {
        let mut v = self.regular.clone();
        if let Some(o) = self.optimistic {
            if !v.contains(&o) {
                v.push(o);
            }
        }
        v
    }
}

/// A peer selection strategy.
pub trait Choker: Send {
    /// Run one rechoke round at `now` over the current peer snapshots.
    fn rechoke(
        &mut self,
        now: Instant,
        peers: &[PeerSnapshot],
        rng: &mut dyn rand::RngCore,
    ) -> ChokeDecision;

    /// Strategy name for harness output.
    fn name(&self) -> &'static str;
}

fn sort_by_rate_desc(keys: &mut [PeerSnapshot], rate: impl Fn(&PeerSnapshot) -> f64) {
    // Stable order with the peer key as tie-break keeps runs deterministic.
    keys.sort_by(|a, b| {
        rate(b)
            .partial_cmp(&rate(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.key.cmp(&b.key))
    });
}

fn choose_random_key(candidates: &[PeerKey], rng: &mut dyn rand::RngCore) -> Option<PeerKey> {
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.random_range(0..candidates.len())])
    }
}

/// Leecher-state choke algorithm (§II-C.2).
#[derive(Debug)]
pub struct LeecherChoker {
    /// Round counter; every `optimistic_every` rounds rotates the OU.
    round: u64,
    /// Rotate the optimistic unchoke every this many rounds (default 3,
    /// i.e. every 30 s).
    optimistic_every: u64,
    current_optimistic: Option<PeerKey>,
}

impl Default for LeecherChoker {
    fn default() -> Self {
        LeecherChoker {
            round: 0,
            optimistic_every: 3,
            current_optimistic: None,
        }
    }
}

impl LeecherChoker {
    /// The optimistic-unchoke holder carried between rounds.
    pub fn current_optimistic(&self) -> Option<PeerKey> {
        self.current_optimistic
    }
}

impl Choker for LeecherChoker {
    fn rechoke(
        &mut self,
        _now: Instant,
        peers: &[PeerSnapshot],
        rng: &mut dyn rand::RngCore,
    ) -> ChokeDecision {
        let rotate = self.round.is_multiple_of(self.optimistic_every);
        self.round += 1;

        // Step 1: the 3 fastest interested peers by download rate.
        // Snubbed peers are excluded from regular slots (anti-snubbing);
        // the optimistic path below can still reach them.
        let mut interested: Vec<PeerSnapshot> =
            peers.iter().copied().filter(|p| p.interested).collect();
        sort_by_rate_desc(&mut interested, |p| p.download_rate);
        let regular: Vec<PeerKey> = interested
            .iter()
            .filter(|p| !p.snubbed)
            .take(REGULAR_SLOTS)
            .map(|p| p.key)
            .collect();

        // Step 2: every 30 s, one additional interested peer at random.
        let alive = |k: PeerKey| peers.iter().any(|p| p.key == k && p.interested);
        if rotate || self.current_optimistic.is_none_or(|k| !alive(k)) {
            let candidates: Vec<PeerKey> = interested
                .iter()
                .map(|p| p.key)
                .filter(|k| !regular.contains(k))
                .collect();
            self.current_optimistic = choose_random_key(&candidates, rng);
        } else if let Some(o) = self.current_optimistic {
            // A promoted OU (now in the top 3) frees the optimistic slot.
            if regular.contains(&o) {
                let candidates: Vec<PeerKey> = interested
                    .iter()
                    .map(|p| p.key)
                    .filter(|k| !regular.contains(k))
                    .collect();
                self.current_optimistic = choose_random_key(&candidates, rng);
            }
        }
        ChokeDecision {
            regular,
            optimistic: self.current_optimistic,
        }
    }

    fn name(&self) -> &'static str {
        "leecher-choke"
    }
}

/// New seed-state choke algorithm (mainline ≥ 4.0.0, §II-C.2).
#[derive(Debug, Default)]
pub struct SeedChokerNew {
    /// Period counter within each 30 s cycle (0, 1 → SRU rounds; 2 → keep 4).
    round: u64,
}

impl Choker for SeedChokerNew {
    fn rechoke(
        &mut self,
        _now: Instant,
        peers: &[PeerSnapshot],
        rng: &mut dyn rand::RngCore,
    ) -> ChokeDecision {
        let phase = self.round % 3;
        self.round += 1;

        // Step 1: order unchoked-and-interested peers by time of last
        // unchoke, most recently unchoked first.
        let mut kept: Vec<PeerSnapshot> = peers
            .iter()
            .copied()
            .filter(|p| p.interested && p.unchoked)
            .collect();
        kept.sort_by(|a, b| {
            b.last_unchoked
                .cmp(&a.last_unchoked)
                .then(a.key.cmp(&b.key))
        });

        if phase < 2 {
            // Keep the 3 most recently unchoked; add one random
            // choked-and-interested peer (the SRU).
            let regular: Vec<PeerKey> = kept.iter().take(REGULAR_SLOTS).map(|p| p.key).collect();
            let candidates: Vec<PeerKey> = peers
                .iter()
                .filter(|p| p.interested && !p.unchoked && !regular.contains(&p.key))
                .map(|p| p.key)
                .collect();
            let sru = choose_random_key(&candidates, rng);
            ChokeDecision {
                regular,
                optimistic: sru,
            }
        } else {
            // Third period: keep the first 4, no random slot.
            let regular: Vec<PeerKey> = kept.iter().take(4).map(|p| p.key).collect();
            ChokeDecision {
                regular,
                optimistic: None,
            }
        }
    }

    fn name(&self) -> &'static str {
        "seed-choke-new"
    }
}

/// Old seed-state choke algorithm (mainline < 4.0.0): leecher-state shape
/// but ordered by *upload* rate from the local peer (§II-C.2).
#[derive(Debug)]
pub struct SeedChokerOld {
    round: u64,
    optimistic_every: u64,
    current_optimistic: Option<PeerKey>,
}

impl Default for SeedChokerOld {
    fn default() -> Self {
        SeedChokerOld {
            round: 0,
            optimistic_every: 3,
            current_optimistic: None,
        }
    }
}

impl Choker for SeedChokerOld {
    fn rechoke(
        &mut self,
        _now: Instant,
        peers: &[PeerSnapshot],
        rng: &mut dyn rand::RngCore,
    ) -> ChokeDecision {
        let rotate = self.round.is_multiple_of(self.optimistic_every);
        self.round += 1;

        let mut interested: Vec<PeerSnapshot> =
            peers.iter().copied().filter(|p| p.interested).collect();
        sort_by_rate_desc(&mut interested, |p| p.upload_rate);
        let regular: Vec<PeerKey> = interested
            .iter()
            .take(REGULAR_SLOTS)
            .map(|p| p.key)
            .collect();

        let alive = |k: PeerKey| peers.iter().any(|p| p.key == k && p.interested);
        if rotate
            || self.current_optimistic.is_none_or(|k| !alive(k))
            || self
                .current_optimistic
                .is_some_and(|k| regular.contains(&k))
        {
            let candidates: Vec<PeerKey> = interested
                .iter()
                .map(|p| p.key)
                .filter(|k| !regular.contains(k))
                .collect();
            self.current_optimistic = choose_random_key(&candidates, rng);
        }
        ChokeDecision {
            regular,
            optimistic: self.current_optimistic,
        }
    }

    fn name(&self) -> &'static str {
        "seed-choke-old"
    }
}

/// Bit-level tit-for-tat baseline (§IV-B.1).
///
/// "a peer A refuses to upload data to a peer B if the amount of bytes
/// uploaded by A to B minus the amount of bytes downloaded from B to A is
/// higher than a given threshold." Within the allowed peers, slots go to
/// the fastest downloaders; the deficit test is the binding constraint.
#[derive(Debug)]
pub struct TitForTatChoker {
    /// Maximum tolerated deficit in bytes (default: four 16 kB blocks —
    /// the strict byte-level reciprocation the proposals call for; a
    /// loose threshold would amount to interest-free credit from every
    /// partner and mask exactly the behaviour under study).
    pub threshold: u64,
    /// Unchoke slots (kept at 4 to match the choke algorithm's footprint).
    pub slots: usize,
}

impl Default for TitForTatChoker {
    fn default() -> Self {
        TitForTatChoker {
            threshold: 4 * 16 * 1024,
            slots: 4,
        }
    }
}

impl Choker for TitForTatChoker {
    fn rechoke(
        &mut self,
        _now: Instant,
        peers: &[PeerSnapshot],
        _rng: &mut dyn rand::RngCore,
    ) -> ChokeDecision {
        let mut eligible: Vec<PeerSnapshot> = peers
            .iter()
            .copied()
            .filter(|p| {
                p.interested && p.uploaded_to.saturating_sub(p.downloaded_from) <= self.threshold
            })
            .collect();
        sort_by_rate_desc(&mut eligible, |p| p.download_rate);
        ChokeDecision {
            regular: eligible.iter().take(self.slots).map(|p| p.key).collect(),
            optimistic: None,
        }
    }

    fn name(&self) -> &'static str {
        "tit-for-tat"
    }
}

/// Strategy selector for harnesses and scenario configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChokerKind {
    /// [`LeecherChoker`] / [`SeedChokerNew`] — the paper's algorithms.
    Standard,
    /// Leecher state standard, but [`SeedChokerOld`] in seed state.
    OldSeed,
    /// [`TitForTatChoker`] in leecher state (old algorithm as seed).
    TitForTat,
}

impl ChokerKind {
    /// Build the leecher-state choker.
    pub fn build_leecher(&self) -> Box<dyn Choker> {
        match self {
            ChokerKind::Standard | ChokerKind::OldSeed => Box::<LeecherChoker>::default(),
            ChokerKind::TitForTat => Box::<TitForTatChoker>::default(),
        }
    }

    /// Build the seed-state choker.
    pub fn build_seed(&self) -> Box<dyn Choker> {
        match self {
            ChokerKind::Standard => Box::<SeedChokerNew>::default(),
            ChokerKind::OldSeed | ChokerKind::TitForTat => Box::<SeedChokerOld>::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn snap(key: PeerKey, interested: bool, dl: f64) -> PeerSnapshot {
        PeerSnapshot {
            key,
            interested,
            unchoked: false,
            download_rate: dl,
            upload_rate: 0.0,
            last_unchoked: None,
            uploaded_to: 0,
            downloaded_from: 0,
            snubbed: false,
        }
    }

    #[test]
    fn leecher_unchokes_three_fastest() {
        let peers: Vec<PeerSnapshot> = (0..6)
            .map(|k| snap(k, true, f64::from(k) * 100.0))
            .collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut choker = LeecherChoker::default();
        let d = choker.rechoke(Instant::ZERO, &peers, &mut rng);
        assert_eq!(d.regular, vec![5, 4, 3]);
        let ou = d.optimistic.unwrap();
        assert!(ou < 3, "OU must come from the choked interested peers");
        assert!(d.unchoked().len() <= 4);
    }

    #[test]
    fn leecher_ignores_uninterested_peers() {
        let mut peers: Vec<PeerSnapshot> = (0..4).map(|k| snap(k, false, 1000.0)).collect();
        peers.push(snap(9, true, 1.0));
        let mut rng = SmallRng::seed_from_u64(1);
        let mut choker = LeecherChoker::default();
        let d = choker.rechoke(Instant::ZERO, &peers, &mut rng);
        assert_eq!(d.regular, vec![9]);
        assert_eq!(d.optimistic, None, "no spare interested peer for OU");
    }

    #[test]
    fn optimistic_rotates_every_three_rounds() {
        let peers: Vec<PeerSnapshot> = (0..20)
            .map(|k| snap(k, true, if k < 3 { 1000.0 } else { 0.0 }))
            .collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut choker = LeecherChoker::default();
        let d0 = choker.rechoke(Instant::ZERO, &peers, &mut rng);
        let d1 = choker.rechoke(Instant::from_secs(10), &peers, &mut rng);
        let d2 = choker.rechoke(Instant::from_secs(20), &peers, &mut rng);
        // Rounds 1 and 2 keep the same OU.
        assert_eq!(d0.optimistic, d1.optimistic);
        assert_eq!(d1.optimistic, d2.optimistic);
        // Over many 30 s cycles the OU visits many peers.
        let mut seen = std::collections::HashSet::new();
        for i in 0..60 {
            let d = choker.rechoke(Instant::from_secs(30 + i * 10), &peers, &mut rng);
            seen.insert(d.optimistic.unwrap());
        }
        assert!(seen.len() > 5, "OU rotation stuck: {seen:?}");
    }

    #[test]
    fn seed_new_keeps_recently_unchoked_and_rotates() {
        // 10 interested peers; peers 0–3 are unchoked with staggered
        // last-unchoke times (3 most recent).
        let mut peers: Vec<PeerSnapshot> = (0..10).map(|k| snap(k, true, 0.0)).collect();
        for (k, p) in peers.iter_mut().take(4).enumerate() {
            p.unchoked = true;
            p.last_unchoked = Some(Instant::from_secs(k as u64 * 10));
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let mut choker = SeedChokerNew::default();
        // Phase 0: keep the 3 most recently unchoked (3, 2, 1) + random SRU.
        let d = choker.rechoke(Instant::from_secs(100), &peers, &mut rng);
        assert_eq!(d.regular, vec![3, 2, 1]);
        let sru = d.optimistic.unwrap();
        assert!(!d.regular.contains(&sru));
        assert!(!peers[sru as usize].unchoked, "SRU comes from choked peers");
        // Phase 2 keeps four, no SRU.
        let _ = choker.rechoke(Instant::from_secs(110), &peers, &mut rng);
        let d2 = choker.rechoke(Instant::from_secs(120), &peers, &mut rng);
        assert_eq!(d2.regular.len(), 4);
        assert_eq!(d2.optimistic, None);
    }

    #[test]
    fn seed_new_ignores_rates_entirely() {
        // A very fast downloader must get no advantage.
        let mut peers: Vec<PeerSnapshot> = (0..5).map(|k| snap(k, true, 0.0)).collect();
        peers[0].upload_rate = 1e9;
        peers[0].download_rate = 1e9;
        for p in peers.iter_mut() {
            p.unchoked = true;
            p.last_unchoked = Some(Instant::from_secs(u64::from(p.key)));
        }
        let mut rng = SmallRng::seed_from_u64(2);
        let mut choker = SeedChokerNew::default();
        let d = choker.rechoke(Instant::from_secs(50), &peers, &mut rng);
        // Ordering is purely by recency: 4, 3, 2 — not by rate.
        assert_eq!(d.regular, vec![4, 3, 2]);
    }

    #[test]
    fn seed_old_favors_fast_uploads() {
        let mut peers: Vec<PeerSnapshot> = (0..6).map(|k| snap(k, true, 0.0)).collect();
        for p in peers.iter_mut() {
            p.upload_rate = f64::from(p.key) * 10.0;
        }
        let mut rng = SmallRng::seed_from_u64(2);
        let mut choker = SeedChokerOld::default();
        let d = choker.rechoke(Instant::ZERO, &peers, &mut rng);
        assert_eq!(d.regular, vec![5, 4, 3]);
    }

    #[test]
    fn tft_blocks_peers_over_deficit() {
        let mut peers: Vec<PeerSnapshot> = (0..4).map(|k| snap(k, true, 100.0)).collect();
        peers[0].uploaded_to = 10_000_000; // huge deficit, never repaid
        peers[0].downloaded_from = 0;
        peers[1].uploaded_to = 10_000_000;
        peers[1].downloaded_from = 9_999_000; // almost square
        let mut rng = SmallRng::seed_from_u64(2);
        let mut choker = TitForTatChoker::default();
        let d = choker.rechoke(Instant::ZERO, &peers, &mut rng);
        assert!(!d.unchoked().contains(&0), "free rider must be refused");
        assert!(d.unchoked().contains(&1));
        assert!(d.unchoked().contains(&2));
    }

    #[test]
    fn snubbed_peers_lose_regular_slots() {
        let mut peers: Vec<PeerSnapshot> = (0..6)
            .map(|k| snap(k, true, f64::from(10 - k) * 100.0))
            .collect();
        // The fastest peer is snubbing us.
        peers[0].snubbed = true;
        let mut rng = SmallRng::seed_from_u64(4);
        let mut choker = LeecherChoker::default();
        let d = choker.rechoke(Instant::ZERO, &peers, &mut rng);
        assert_eq!(d.regular, vec![1, 2, 3], "snubbed peer skipped for RU");
        // It may still appear as the optimistic unchoke over many rounds.
        let mut ou_hits = 0;
        for i in 0..60 {
            let d = choker.rechoke(Instant::from_secs(10 * i), &peers, &mut rng);
            if d.optimistic == Some(0) {
                ou_hits += 1;
            }
        }
        assert!(ou_hits > 0, "snubbed peer must stay OU-eligible");
    }

    #[test]
    fn decision_unchoked_deduplicates() {
        let d = ChokeDecision {
            regular: vec![1, 2],
            optimistic: Some(2),
        };
        assert_eq!(d.unchoked(), vec![1, 2]);
        let d = ChokeDecision {
            regular: vec![1, 2],
            optimistic: Some(3),
        };
        assert_eq!(d.unchoked(), vec![1, 2, 3]);
    }

    #[test]
    fn kinds_build_expected_chokers() {
        assert_eq!(ChokerKind::Standard.build_leecher().name(), "leecher-choke");
        assert_eq!(ChokerKind::Standard.build_seed().name(), "seed-choke-new");
        assert_eq!(ChokerKind::OldSeed.build_seed().name(), "seed-choke-old");
        assert_eq!(ChokerKind::TitForTat.build_leecher().name(), "tit-for-tat");
    }
}
