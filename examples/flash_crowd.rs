//! Flash crowd: one fresh initial seed, sixty leechers arriving within a
//! minute — the startup scenario whose dynamics §IV-A.2.a of the paper
//! dissects. Watch the transient state (rare pieces drain linearly at the
//! initial seed's upload capacity) turn into steady state.
//!
//! ```sh
//! cargo run --release --example flash_crowd
//! ```

use bt_repro::analysis::ReplicationSeries;
use bt_repro::sim::{BehaviorProfile, CapacityClass, Role, Swarm, SwarmSpec};
use bt_repro::wire::peer_id::ClientKind;
use bt_repro::wire::time::Duration;

fn main() {
    let pieces = 96u32;
    let mut peers = vec![BehaviorProfile::seed()]; // 20 kB/s initial seed
    for i in 0..60 {
        peers.push(BehaviorProfile {
            role: Role::Leecher,
            client: ClientKind::Mainline402,
            capacity: CapacityClass::Dsl,
            join_at: Duration::from_secs(i),
            seed_linger: Some(Duration::from_secs(1800)),
            depart_at: None,
            prepopulate: false, // a true flash crowd: nobody has anything
            restart_after: None,
        });
    }
    let spec = SwarmSpec {
        seed: 7,
        total_len: u64::from(pieces) * 256 * 1024,
        piece_len: 256 * 1024,
        duration: Duration::from_secs(4 * 3600),
        peers,
        local: Some(1),
        available_fraction: 0.0, // every piece starts rare
        ..SwarmSpec::default()
    };
    println!("flash crowd: 1 seed @20 kB/s, 60 leechers, {pieces} pieces ...");
    let result = Swarm::new(spec).run();

    let trace = result.trace.expect("instrumented");
    let series = ReplicationSeries::from_trace(&trace);

    // The transient phase ends when no piece is *rare* (§II-A: rare =
    // present only on the initial seed). The instrumented peer keeps the
    // seed in its peer set here, so "no rare piece" reads as min ≥ 2:
    // every piece has a copy beyond the seed's.
    let transition = series
        .points
        .iter()
        .find(|p| p.peer_set_size > 1 && p.min >= 2)
        .map(|p| p.t_secs);
    // Lower bound predicted by §IV-A.2.a: the initial seed must push one
    // copy of everything at its 20 kB/s upload capacity.
    let lower_bound = f64::from(pieces) * 256.0 * 1024.0 / (20.0 * 1024.0);
    println!("content injection lower bound : {lower_bound:.0} s (seed-capacity limited)");
    match transition {
        Some(t) => println!("observed transient → steady at : {t:.0} s"),
        None => println!("torrent stayed transient for the whole session"),
    }

    let completed: Vec<f64> = result
        .completion
        .iter()
        .flatten()
        .map(|t| t.as_secs_f64())
        .collect();
    let mean = completed.iter().sum::<f64>() / completed.len().max(1) as f64;
    println!(
        "peers completed                : {} / 60",
        result.completed_peers
    );
    println!("mean completion time           : {mean:.0} s");
    if let Some(t) = transition {
        assert!(
            t >= lower_bound * 0.5,
            "transient cannot end much before the seed has pushed one copy"
        );
    }
}
