//! # bt-torrents — the Table I testbed
//!
//! The paper evaluates rarest first and choke on 26 live torrents
//! (Table I). This crate reproduces that testbed: [`table1`] holds the 26
//! rows verbatim, and [`runner`] scales each row to a simulatable swarm
//! (printing the scaling applied), joins one instrumented local peer, and
//! returns its trace for `bt-analysis`.

#![warn(missing_docs)]

pub mod runner;
pub mod scenarios;
pub mod table1;

pub use runner::{
    build_swarm_spec, default_jobs, run_scenario, run_scenarios_parallel, run_table1,
    run_table1_parallel, RunConfig, RunConfigBuilder, ScaledParams, ScenarioOutcome,
};
pub use scenarios::PresetOptions;
pub use table1::{table1, torrent, ScenarioSpec};
