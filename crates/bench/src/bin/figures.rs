//! `figures` — regenerate every table and figure of the paper.
//!
//! ```text
//! figures <artefact> [--quick] [--full] [--seed N]
//! ```
//!
//! Run `figures --help` for the artefact list; DESIGN.md §5 maps each
//! artefact to the paper's table/figure.

use bt_bench::experiments as exp;
use bt_bench::report::{bar, downsample, ratio, secs, sparkline, table};
use bt_torrents::{run_scenario, torrent, RunConfig, ScenarioOutcome};
use std::io::Write as _;
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artefact = None;
    let mut cfg = RunConfig::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut jobs_flag: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => {
                cfg = RunConfig {
                    seed: cfg.seed,
                    ..RunConfig::quick()
                }
            }
            "--full" => {
                cfg.max_peers = 250;
                cfg.max_pieces = 400;
                cfg.session = bt_wire::time::Duration::from_secs(7200);
            }
            "--seed" => {
                cfg.seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--jobs" => {
                let n: usize = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs an integer"));
                if n == 0 {
                    die("--jobs must be at least 1");
                }
                jobs_flag = Some(n);
            }
            "--out" => {
                out_dir = Some(PathBuf::from(
                    iter.next()
                        .unwrap_or_else(|| die("--out needs a directory")),
                ));
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            other if artefact.is_none() && !other.starts_with('-') => {
                artefact = Some(other.to_owned());
            }
            other => die(&format!("unknown argument `{other}` (see --help)")),
        }
    }
    let Some(artefact) = artefact else {
        print_help();
        return;
    };
    let jobs = jobs_flag.unwrap_or_else(bt_torrents::default_jobs);

    match artefact.as_str() {
        "table1" => {
            print_table1(&cfg);
            // An explicit --jobs turns table1 into the parallel-runner
            // benchmark: time the sequential sweep against the pool and
            // print the measured speedup.
            if jobs_flag.is_some() {
                bench_parallel_sweep(&cfg, jobs);
            }
        }
        "fig1" => {
            let outcomes = run_sweep(&cfg, jobs);
            print_fig1(&outcomes);
        }
        "fig2" | "fig3" => {
            let o = run_one(8, &cfg);
            if artefact == "fig2" {
                print_replication(&o, true, "Figure 2 — copies in peer set, torrent 8 (LS)");
            } else {
                print_rarest(
                    &o,
                    true,
                    "Figure 3 — number of rarest pieces, torrent 8 (LS)",
                );
            }
        }
        "fig4" | "fig5" | "fig6" => {
            let o = run_one(7, &cfg);
            match artefact.as_str() {
                "fig4" => print_replication(&o, false, "Figure 4 — copies in peer set, torrent 7"),
                "fig5" => print_peer_set(&o, "Figure 5 — peer set size, torrent 7"),
                _ => print_rarest(&o, false, "Figure 6 — number of rarest pieces, torrent 7"),
            }
        }
        "fig7" | "fig8" => {
            let o = run_one(10, &cfg);
            let (pieces, blocks) = exp::interarrivals(&o);
            if artefact == "fig7" {
                print_interarrival(&pieces, "Figure 7 — piece interarrival CDF, torrent 10");
            } else {
                print_interarrival(&blocks, "Figure 8 — block interarrival CDF, torrent 10");
            }
        }
        "fig9" => {
            let outcomes = run_sweep(&cfg, jobs);
            print_fairness(&exp::fig9(&outcomes), "Figure 9 — fairness, leecher state");
        }
        "fig10" => {
            let o = run_one(7, &cfg);
            print_fig10(&o);
        }
        "fig11" => {
            let outcomes = run_sweep(&cfg, jobs);
            print_fairness(&exp::fig11(&outcomes), "Figure 11 — fairness, seed state");
        }
        "ablation-picker" => print_ablation_picker(&cfg),
        "ablation-seed-choke" => print_ablation_seed_choke(&cfg),
        "ablation-tft" => print_ablation_tft(&cfg),
        "ablation-endgame" => print_ablation_endgame(&cfg),
        "ablation-fastext" => print_ablation_fastext(&cfg),
        "ablation-superseed" => print_ablation_superseed(&cfg),
        "ablation-pex" => print_ablation_pex(&cfg),
        "msgstats" => print_msgstats(&cfg),
        "equilibrium" => print_equilibrium(&cfg),
        "clients" => print_clients(&cfg),
        "globalcheck" => print_globalcheck(&cfg),
        "capacity" => print_capacity(&cfg),
        "export" => export_csv(
            &cfg,
            jobs,
            out_dir.as_deref().unwrap_or(Path::new("figures_out")),
        ),
        "all" => run_all(&cfg, jobs),
        other => die(&format!("unknown artefact `{other}` (see --help)")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("figures: {msg}");
    std::process::exit(2)
}

fn print_help() {
    let text = "figures — regenerate the paper's tables and figures

USAGE: figures <artefact> [--quick|--full] [--seed N]

ARTEFACTS
  table1  fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
  ablation-picker  ablation-seed-choke  ablation-tft  ablation-endgame
  ablation-fastext  ablation-superseed  ablation-pex
  msgstats              message tallies and control-plane overhead
  equilibrium           choke-slot tenures and active-set churn (§IV-B.2)
  clients               per-client-family breakdown (§III-D's client zoo)
  globalcheck           local-view inference vs global ground truth (§IV-A.2)
  capacity              flash-crowd completion curve (Yang & de Veciana check)
  export                write every figure's data series as CSV (--out DIR)
  all

OPTIONS
  --quick   small scale (fast smoke run)
  --full    larger scale (closer to the paper's populations)
  --seed N  master PRNG seed (default 42)
  --jobs N  worker threads for the 26-torrent sweep (default: all cores);
            with `table1` also times sequential vs parallel and prints
            the measured speedup
  --out D   output directory for `export` (default ./figures_out)";
    println!("{text}");
}

fn run_one(id: u32, cfg: &RunConfig) -> ScenarioOutcome {
    let spec = torrent(id);
    eprintln!("running torrent {id} (scaled) ...");
    let o = run_scenario(&spec, cfg);
    eprintln!(
        "  scaled: {} seeds / {} leechers / {} pieces, session {}s, {} events",
        o.scaled.seeds,
        o.scaled.leechers,
        o.scaled.pieces,
        o.scaled.session_secs,
        o.result.events_processed
    );
    o
}

fn run_sweep(cfg: &RunConfig, jobs: usize) -> Vec<ScenarioOutcome> {
    eprintln!("running the 26-torrent sweep ({jobs} jobs) ...");
    exp::sweep(cfg, jobs, |id| eprintln!("  torrent {id:2} done"))
}

/// Time the sequential Table I sweep against the worker pool and print
/// the measured wall-clock speedup (`figures table1 --jobs N`).
fn bench_parallel_sweep(cfg: &RunConfig, jobs: usize) {
    eprintln!("\ntiming sequential sweep ...");
    let t0 = std::time::Instant::now();
    let sequential = bt_torrents::run_table1(cfg, |_| {});
    let seq_elapsed = t0.elapsed();
    eprintln!("timing parallel sweep ({jobs} jobs) ...");
    let t1 = std::time::Instant::now();
    let parallel = bt_torrents::run_table1_parallel(cfg, jobs, |_| {});
    let par_elapsed = t1.elapsed();
    let identical = sequential.len() == parallel.len()
        && sequential
            .iter()
            .zip(&parallel)
            .all(|(s, p)| s.trace == p.trace);
    println!("\nParallel sweep benchmark (quick={})", cfg.max_peers <= 80);
    println!("  sequential : {:>8.2?}", seq_elapsed);
    println!("  {:2} jobs    : {:>8.2?}", jobs, par_elapsed);
    println!(
        "  speedup    : {:.2}x",
        seq_elapsed.as_secs_f64() / par_elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "  traces     : {}",
        if identical {
            "byte-identical to sequential"
        } else {
            "MISMATCH — parallel runner is not deterministic!"
        }
    );
    if !identical {
        std::process::exit(1);
    }
}

// ----------------------------------------------------------------------
// Renderers
// ----------------------------------------------------------------------

fn print_table1(cfg: &RunConfig) {
    println!("Table I — torrent characteristics (paper values and scaled simulation)");
    let rows: Vec<Vec<String>> = bt_torrents::table1()
        .iter()
        .map(|s| {
            let sc = bt_torrents::runner::scale(s, cfg);
            vec![
                s.id.to_string(),
                s.seeds.to_string(),
                s.leechers.to_string(),
                format!("{:.5}", s.ratio()),
                s.max_peer_set.to_string(),
                s.size_mb.to_string(),
                if s.transient {
                    "yes".into()
                } else {
                    "no".into()
                },
                format!("{}/{}", sc.seeds, sc.leechers),
                sc.pieces.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "ID",
                "#S",
                "#L",
                "S/L",
                "maxPS",
                "MB",
                "startup",
                "sim S/L",
                "sim pieces"
            ],
            &rows
        )
    );
}

fn print_fig1(outcomes: &[ScenarioOutcome]) {
    println!("Figure 1 — entropy characterisation (interest-time ratios, leecher state)");
    println!("top graph: local interested in remote (a/b); bottom: remote in local (c/d)\n");
    let rows: Vec<Vec<String>> = exp::fig1(outcomes)
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                if r.transient { "T".into() } else { " ".into() },
                ratio(r.local_in_remote.p20),
                ratio(r.local_in_remote.p50),
                ratio(r.local_in_remote.p80),
                ratio(r.remote_in_local.p20),
                ratio(r.remote_in_local.p50),
                ratio(r.remote_in_local.p80),
                r.peers.to_string(),
                bar(r.local_in_remote.p50, 20),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "ID",
                "st",
                "a/b p20",
                "p50",
                "p80",
                "c/d p20",
                "p50",
                "p80",
                "peers",
                "a/b median"
            ],
            &rows
        )
    );
    println!("st=T: torrent simulated in its startup (transient) phase");
}

fn series_of(o: &ScenarioOutcome, ls: bool) -> bt_analysis::ReplicationSeries {
    exp::replication_series(o, ls)
}

fn print_replication(o: &ScenarioOutcome, ls: bool, title: &str) {
    let s = series_of(o, ls);
    println!("{title}\n");
    let mins: Vec<f64> = s.points.iter().map(|p| f64::from(p.min)).collect();
    let means: Vec<f64> = s.points.iter().map(|p| p.mean).collect();
    let maxs: Vec<f64> = s.points.iter().map(|p| f64::from(p.max)).collect();
    let width = 64;
    println!("max  {}", sparkline(&downsample(&maxs, width)));
    println!("mean {}", sparkline(&downsample(&means, width)));
    println!("min  {}", sparkline(&downsample(&mins, width)));
    let last = s.points.last();
    println!(
        "\nsamples: {}   final min/mean/max: {}/{:.1}/{}   missing-piece fraction: {:.2}   state: {}",
        s.points.len(),
        last.map_or(0, |p| p.min),
        last.map_or(0.0, |p| p.mean),
        last.map_or(0, |p| p.max),
        s.missing_piece_fraction(),
        if s.is_transient() { "TRANSIENT" } else { "steady" },
    );
}

fn print_rarest(o: &ScenarioOutcome, ls: bool, title: &str) {
    let s = series_of(o, ls);
    println!("{title}\n");
    let rarest: Vec<f64> = s
        .points
        .iter()
        .map(|p| f64::from(p.rarest_set_size))
        .collect();
    println!("rarest-set size {}", sparkline(&downsample(&rarest, 64)));
    println!(
        "\nstart {} → end {}   slope {:.4} pieces/s (linear drain ⇒ initial-seed-limited)",
        rarest.first().copied().unwrap_or(0.0),
        rarest.last().copied().unwrap_or(0.0),
        s.rarest_set_slope(),
    );
    let t = bt_analysis::TransientSummary::from_series(&s, o.scaled.piece_len);
    if t.observed {
        println!(
            "transient until {}   implied source rate {:.1} kB/s (configured initial seed: 20 kB/s)",
            t.transient_until_secs.map_or("end".into(), |x| format!("{x:.0} s")),
            t.implied_seed_rate / 1024.0,
        );
    }
}

fn print_peer_set(o: &ScenarioOutcome, title: &str) {
    let s = series_of(o, false);
    println!("{title}\n");
    let ps: Vec<f64> = s
        .points
        .iter()
        .map(|p| f64::from(p.peer_set_size))
        .collect();
    println!("peer set {}", sparkline(&downsample(&ps, 64)));
    println!(
        "\nmean peer set: {:.1}   max: {:.0}",
        s.mean_peer_set(),
        ps.iter().cloned().fold(0.0, f64::max)
    );
}

fn print_interarrival(a: &bt_analysis::InterarrivalAnalysis, title: &str) {
    println!("{title}\n");
    let rows: Vec<Vec<String>> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
        .iter()
        .map(|&q| {
            vec![
                format!("{:.0}%", q * 100.0),
                secs(a.all.quantile(q)),
                secs(a.first.quantile(q)),
                secs(a.last.quantile(q)),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["quantile", "all", "first 100", "last 100"], &rows)
    );
    println!(
        "arrivals: {}   first-slowdown ×{:.2}   last-slowdown ×{:.2}",
        a.count,
        a.first_slowdown(),
        a.last_slowdown()
    );
    println!(
        "(paper: first ≫ all — a first pieces/blocks problem; last ≈ all — no last pieces problem)"
    );
}

fn print_fairness(rows: &[(u32, bt_analysis::FairnessSummary)], title: &str) {
    println!("{title}\n");
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|(id, f)| {
            let mut cells = vec![id.to_string()];
            for s in &f.upload_share {
                cells.push(format!("{s:.2}"));
            }
            cells.push(format!("{:.2}", f.reciprocation_share(5)));
            cells.push(format!("{:.2}", f.jain_index()));
            cells.push((f.total_uploaded / 1024).to_string());
            cells
        })
        .collect();
    println!(
        "{}",
        table(
            &["ID", "set1", "set2", "set3", "set4", "set5", "set6", "recip5", "jain", "upKiB"],
            &out
        )
    );
    println!("setK: upload share of the K-th set of 5 best downloaders (set1 = black set)");
    println!("recip5: share of (leecher) download bytes coming from the 5 best-uploaded-to peers");
}

fn print_fig10(o: &ScenarioOutcome) {
    let (c, r_ls, r_ss) = exp::fig10(o);
    println!("Figure 10 — unchokes vs interested time, torrent 7\n");
    for (name, points, r) in [
        ("leecher state", &c.leecher, r_ls),
        ("seed state", &c.seed, r_ss),
    ] {
        println!("{name}: {} peers, Pearson r = {}", points.len(), ratio(r));
        let mut sorted = points.clone();
        sorted.sort_by(|a, b| a.interested_secs.total_cmp(&b.interested_secs));
        let ys: Vec<f64> = sorted.iter().map(|p| f64::from(p.unchokes)).collect();
        println!(
            "  unchokes (by interested time) {}",
            sparkline(&downsample(&ys, 60))
        );
    }
    println!("\n(paper: no correlation in leecher state; strong correlation in seed state)");
}

fn print_ablation_picker(cfg: &RunConfig) {
    println!("Ablation — piece selection strategies on torrent 6 (1 seed, transient)\n");
    let rows: Vec<Vec<String>> = exp::ablation_picker(cfg)
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.picker),
                ratio(r.entropy_ab_median),
                ratio(r.entropy_cd_median),
                r.local_download_secs.map_or("-".into(), secs),
                r.completed_peers.to_string(),
                format!("{:.2}", r.missing_piece_fraction),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "picker",
                "a/b med",
                "c/d med",
                "local dl",
                "done",
                "missing-frac"
            ],
            &rows
        )
    );
}

fn print_ablation_seed_choke(cfg: &RunConfig) {
    println!("Ablation — seed-state choke: new (≥4.0.0) vs old, fast seed + fast free rider\n");
    let rows: Vec<Vec<String>> = exp::ablation_seed_choke(cfg)
        .iter()
        .map(|r| {
            vec![
                if r.new_algorithm {
                    "new (SKU/SRU)".into()
                } else {
                    "old (rate)".into()
                },
                format!("{:.3}", r.jain_index),
                format!("{:.2}", r.free_rider_share),
                r.peers_served.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["algorithm", "jain", "FR share", "peers served"], &rows)
    );
    println!("(paper §IV-B.3: the old algorithm lets a fast free rider monopolise the seed)");
}

fn print_ablation_tft(cfg: &RunConfig) {
    println!("Ablation — choke algorithm vs bit-level tit-for-tat (asymmetric peers)\n");
    let rows: Vec<Vec<String>> = exp::ablation_tft(cfg)
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.choker),
                r.honest_mean_secs.map_or("-".into(), secs),
                format!("{}/{}", r.honest_completed, r.honest_total),
                format!("{}/{}", r.free_riders_completed, r.free_rider_total),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "choker",
                "honest mean dl",
                "honest done",
                "free riders done"
            ],
            &rows
        )
    );
    println!(
        "(paper §IV-B.1: TFT strands excess capacity; choke uses it without rewarding FRs over contributors)"
    );
}

fn print_ablation_endgame(cfg: &RunConfig) {
    println!("Ablation — end game mode on vs off (torrent 3)\n");
    let rows: Vec<Vec<String>> = exp::ablation_endgame(cfg)
        .iter()
        .map(|r| {
            vec![
                if r.endgame { "on".into() } else { "off".into() },
                r.local_download_secs.map_or("-".into(), secs),
                secs(r.last_blocks_max_gap),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["end game", "local dl", "max gap last 100 blocks"], &rows)
    );
    println!("(paper §IV-A.3: end game trims termination idle time only — little overall impact)");
}

fn print_ablation_fastext(cfg: &RunConfig) {
    println!("Ablation — Fast Extension (BEP 6) vs the first blocks problem (torrent 10)\n");
    let rows: Vec<Vec<String>> = exp::ablation_fastext(cfg)
        .iter()
        .map(|r| {
            vec![
                if r.fast { "on".into() } else { "off".into() },
                r.time_to_first_block.map_or("-".into(), secs),
                r.time_to_first_piece.map_or("-".into(), secs),
                format!("×{:.2}", r.first_blocks_slowdown),
                r.local_download_secs.map_or("-".into(), secs),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "fast ext",
                "first block",
                "first piece",
                "first-100 slowdown",
                "local dl"
            ],
            &rows
        )
    );
    println!("(paper §VI: \"the time to deliver the first blocks of data should be reduced\")");
}

fn print_ablation_superseed(cfg: &RunConfig) {
    println!("Ablation — initial seed policy: plain seeding vs super-seeding (flash crowd)\n");
    let rows: Vec<Vec<String>> = exp::ablation_superseed(cfg)
        .iter()
        .map(|r| {
            vec![
                if r.super_seed {
                    "super-seed".into()
                } else {
                    "plain".into()
                },
                r.first_copy_secs.map_or("-".into(), secs),
                format!("{:.1} %", r.duplicate_ratio * 100.0),
                r.completed_peers.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "policy",
                "first full copy",
                "duplicate blocks",
                "peers done"
            ],
            &rows
        )
    );
    println!(
        "(paper §IV-A.4: policies like super seeding keep the initial seed's duplicate ratio low)"
    );
}

fn print_ablation_pex(cfg: &RunConfig) {
    println!("Ablation — peer exchange (BEP 11) under a rationing tracker (2 peers/announce)\n");
    let rows: Vec<Vec<String>> = exp::ablation_pex(cfg)
        .iter()
        .map(|r| {
            vec![
                if r.pex {
                    "ut_pex on".into()
                } else {
                    "tracker only".into()
                },
                format!("{:.1}", r.mean_peer_set),
                r.local_download_secs.map_or("-".into(), secs),
                r.completed_peers.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["discovery", "mean peer set", "late joiner dl", "peers done"],
            &rows
        )
    );
    println!(
        "(§II-B: the tracker's random lists interconnect the peer sets; gossip replaces them)"
    );
}

fn print_msgstats(cfg: &RunConfig) {
    let o = run_one(7, cfg);
    let stats = bt_analysis::MessageStats::from_trace(&o.trace);
    println!("Message statistics — torrent 7 (§III-C full message log)\n");
    let rows: Vec<Vec<String>> = stats
        .counts
        .iter()
        .map(|(kind, c)| vec![kind.clone(), c.sent.to_string(), c.received.to_string()])
        .collect();
    println!("{}", table(&["kind", "sent", "received"], &rows));
    println!(
        "control bytes: {}   data bytes: {}   overhead: {:.4} control B per data B",
        stats.control_bytes,
        stats.data_bytes,
        stats.overhead_ratio()
    );
}

fn print_equilibrium(cfg: &RunConfig) {
    let o = run_one(7, cfg);
    let (ls, ss) = bt_analysis::equilibrium(&o.trace);
    println!("Choke equilibrium — torrent 7 (§IV-B.2's future-work analysis)\n");
    let rows = vec![
        vec![
            "leecher".to_string(),
            ls.tenures.to_string(),
            secs(ls.mean_tenure_secs),
            secs(ls.median_tenure_secs()),
            format!("{:.2}", ls.top3_unchoke_share),
            format!("{:.2}", ls.churn_per_round),
        ],
        vec![
            "seed".to_string(),
            ss.tenures.to_string(),
            secs(ss.mean_tenure_secs),
            secs(ss.median_tenure_secs()),
            format!("{:.2}", ss.top3_unchoke_share),
            format!("{:.2}", ss.churn_per_round),
        ],
    ];
    println!(
        "{}",
        table(
            &[
                "state",
                "tenures",
                "mean tenure",
                "median",
                "top-3 share",
                "churn/round"
            ],
            &rows
        )
    );
    println!("(leecher state: long tenures + concentrated slots = the elected-subset equilibrium;");
    println!(" seed state: short tenures + rotation = the new algorithm's equal service time)");
}

fn print_clients(cfg: &RunConfig) {
    let o = run_one(7, cfg);
    let b = bt_analysis::client_breakdown(&o.trace);
    println!("Client families — torrent 7 (§III-D: \"around 20 different BitTorrent clients\")\n");
    let rows: Vec<Vec<String>> = b
        .families
        .iter()
        .map(|(fam, a)| {
            vec![
                fam.clone(),
                a.connections.to_string(),
                a.unique_peers.to_string(),
                secs(a.membership_secs),
                (a.downloaded / 1024).to_string(),
                (a.uploaded / 1024).to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "client id",
                "conns",
                "unique",
                "member time",
                "dl KiB",
                "ul KiB"
            ],
            &rows
        )
    );
    if let Some((fam, bytes)) = b.top_source() {
        println!("top source family: {fam} ({} KiB)", bytes / 1024);
    }
}

fn print_globalcheck(cfg: &RunConfig) {
    println!("Validation — local-view inference vs global ground truth (§IV-A.2)\n");
    println!("the paper could only infer the transient state from the local peer set;");
    println!("the simulator knows the whole torrent, so the inference can be graded.\n");
    let rows: Vec<Vec<String>> = exp::global_check(cfg)
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                if r.local_transient {
                    "TRANSIENT".into()
                } else {
                    "steady".into()
                },
                format!("{:.2}", r.local_missing_fraction),
                if r.truth_transient {
                    "TRANSIENT".into()
                } else {
                    "steady".into()
                },
                format!("{:.2}", r.truth_rare_fraction),
                format!("{:.1}", r.truth_single_copy_mean),
                if r.local_transient == r.truth_transient {
                    "✓".into()
                } else {
                    "✗".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "torrent",
                "local call",
                "miss-frac",
                "truth call",
                "rare-frac",
                "rare pieces",
                "agree"
            ],
            &rows
        )
    );
    println!("(the local 80-peer window is a faithful proxy for the global state — the");
    println!(" paper's §III-E.1 representativeness argument, now checked, not assumed)");
}

fn print_capacity(cfg: &RunConfig) {
    use bt_sim::behavior::{CapacityClass, Role};
    use bt_sim::{BehaviorProfile, Swarm, SwarmSpec};
    use bt_wire::time::Duration as D;
    println!("Service capacity — swarm vs client-server as the population grows (§I)\n");
    println!("the same simulator runs both: \"client-server\" = every leecher is a");
    println!("free rider, so only the seed serves; \"swarm\" = normal leechers.\n");
    let run = |n: usize, server_only: bool| -> Option<f64> {
        let mut peers = Vec::new();
        peers.push(BehaviorProfile {
            role: Role::Seed,
            client: bt_wire::peer_id::ClientKind::Mainline402,
            capacity: CapacityClass::Cable, // 64 kB/s source
            join_at: D::ZERO,
            seed_linger: None,
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
        for i in 0..n {
            peers.push(BehaviorProfile {
                role: if server_only {
                    Role::FreeRider
                } else {
                    Role::Leecher
                },
                client: bt_wire::peer_id::ClientKind::Mainline402,
                capacity: CapacityClass::Dsl,
                join_at: D::from_secs(i as u64 % 30),
                seed_linger: Some(D::from_secs(3600)),
                depart_at: None,
                prepopulate: false,
                restart_after: None,
            });
        }
        let spec = SwarmSpec {
            seed: cfg.seed,
            total_len: 24 * 256 * 1024, // 6 MB
            piece_len: 256 * 1024,
            duration: D::from_secs(4 * 3600),
            peers,
            local: None,
            available_fraction: 0.0,
            ..SwarmSpec::default()
        };
        let result = Swarm::new(spec).run();
        let curve = bt_analysis::CapacityCurve::from_completions(&result.completion);
        if curve.completions.len() < n {
            return None; // not everyone finished within the session
        }
        Some(curve.completions.iter().sum::<f64>() / curve.completions.len() as f64)
    };
    let mut rows = Vec::new();
    for n in [8usize, 16, 32] {
        let swarm = run(n, false);
        let server = run(n, true);
        rows.push(vec![
            n.to_string(),
            swarm.map_or("> session".into(), secs),
            server.map_or("> session".into(), secs),
        ]);
    }
    println!(
        "{}",
        table(
            &["leechers", "swarm mean dl", "client-server mean dl"],
            &rows
        )
    );
    println!("(Yang & de Veciana via §I: swarm service capacity grows with the peers, so the");
    println!(" mean download time stays flat; a fixed-capacity server degrades linearly in N)");
}

fn write_csv(dir: &Path, name: &str, header: &str, rows: &[String]) {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)
        .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", path.display())));
    writeln!(f, "{header}").expect("write");
    for r in rows {
        writeln!(f, "{r}").expect("write");
    }
    eprintln!("  wrote {}", path.display());
}

fn series_csv(dir: &Path, name: &str, s: &bt_analysis::ReplicationSeries) {
    let rows: Vec<String> = s
        .points
        .iter()
        .map(|p| {
            format!(
                "{},{},{},{},{},{}",
                p.t_secs, p.min, p.mean, p.max, p.rarest_set_size, p.peer_set_size
            )
        })
        .collect();
    write_csv(dir, name, "t_secs,min,mean,max,rarest_set,peer_set", &rows);
}

fn cdf_csv(dir: &Path, name: &str, a: &bt_analysis::InterarrivalAnalysis) {
    let rows: Vec<String> = (0..=100)
        .map(|i| {
            let q = f64::from(i) / 100.0;
            format!(
                "{q},{},{},{}",
                a.all.quantile(q),
                a.first.quantile(q),
                a.last.quantile(q)
            )
        })
        .collect();
    write_csv(dir, name, "quantile,all,first100,last100", &rows);
}

fn fairness_csv(dir: &Path, name: &str, rows: &[(u32, bt_analysis::FairnessSummary)]) {
    let out: Vec<String> = rows
        .iter()
        .map(|(id, f)| {
            let sets: Vec<String> = f.upload_share.iter().map(|s| format!("{s:.4}")).collect();
            format!(
                "{id},{},{:.4},{:.4},{}",
                sets.join(","),
                f.reciprocation_share(5),
                f.jain_index(),
                f.total_uploaded
            )
        })
        .collect();
    write_csv(
        dir,
        name,
        "torrent,set1,set2,set3,set4,set5,set6,recip5,jain,uploaded_bytes",
        &out,
    );
}

/// Run every figure's workload and write plotting-ready CSV series.
fn export_csv(cfg: &RunConfig, jobs: usize, dir: &Path) {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
    eprintln!("exporting CSV series to {} ...", dir.display());
    let outcomes = run_sweep(cfg, jobs);
    let find = |id: u32| {
        outcomes
            .iter()
            .find(|o| o.spec.id == id)
            .expect("sweep has id")
    };

    // Table I.
    let rows: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "{},{},{},{:.6},{},{},{},{}/{},{}",
                o.spec.id,
                o.spec.seeds,
                o.spec.leechers,
                o.spec.ratio(),
                o.spec.max_peer_set,
                o.spec.size_mb,
                o.spec.transient,
                o.scaled.seeds,
                o.scaled.leechers,
                o.scaled.pieces
            )
        })
        .collect();
    write_csv(
        dir,
        "table1.csv",
        "id,seeds,leechers,ratio,max_ps,size_mb,startup,sim_sl,sim_pieces",
        &rows,
    );

    // Figure 1.
    let rows: Vec<String> = exp::fig1(&outcomes)
        .iter()
        .map(|r| {
            format!(
                "{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{}",
                r.id,
                r.transient,
                r.local_in_remote.p20,
                r.local_in_remote.p50,
                r.local_in_remote.p80,
                r.remote_in_local.p20,
                r.remote_in_local.p50,
                r.remote_in_local.p80,
                r.peers
            )
        })
        .collect();
    write_csv(
        dir,
        "fig1.csv",
        "torrent,startup,ab_p20,ab_p50,ab_p80,cd_p20,cd_p50,cd_p80,peers",
        &rows,
    );

    // Figures 2–6.
    series_csv(
        dir,
        "fig2_fig3_torrent8_ls.csv",
        &exp::replication_series(find(8), true),
    );
    series_csv(
        dir,
        "fig4_fig5_fig6_torrent7.csv",
        &exp::replication_series(find(7), false),
    );

    // Figures 7/8.
    let (pieces, blocks) = exp::interarrivals(find(10));
    cdf_csv(dir, "fig7_piece_interarrival.csv", &pieces);
    cdf_csv(dir, "fig8_block_interarrival.csv", &blocks);

    // Figures 9/11.
    fairness_csv(dir, "fig9_fairness_ls.csv", &exp::fig9(&outcomes));
    fairness_csv(dir, "fig11_fairness_ss.csv", &exp::fig11(&outcomes));

    // Figure 10.
    let (c, _, _) = exp::fig10(find(7));
    for (name, points) in [("fig10_ls.csv", &c.leecher), ("fig10_ss.csv", &c.seed)] {
        let rows: Vec<String> = points
            .iter()
            .map(|p| format!("{},{},{}", p.handle, p.interested_secs, p.unchokes))
            .collect();
        write_csv(dir, name, "handle,interested_secs,unchokes", &rows);
    }

    // Message statistics.
    let stats = bt_analysis::MessageStats::from_trace(&find(7).trace);
    let rows: Vec<String> = stats
        .counts
        .iter()
        .map(|(k, v)| format!("{k},{},{}", v.sent, v.received))
        .collect();
    write_csv(dir, "msgstats_torrent7.csv", "kind,sent,received", &rows);
    eprintln!("done.");
}

fn run_all(cfg: &RunConfig, jobs: usize) {
    print_table1(cfg);
    let outcomes = run_sweep(cfg, jobs);
    println!();
    print_fig1(&outcomes);
    let find = |id: u32| {
        outcomes
            .iter()
            .find(|o| o.spec.id == id)
            .expect("sweep has id")
    };
    println!();
    print_replication(
        find(8),
        true,
        "Figure 2 — copies in peer set, torrent 8 (LS)",
    );
    println!();
    print_rarest(
        find(8),
        true,
        "Figure 3 — number of rarest pieces, torrent 8 (LS)",
    );
    println!();
    print_replication(find(7), false, "Figure 4 — copies in peer set, torrent 7");
    println!();
    print_peer_set(find(7), "Figure 5 — peer set size, torrent 7");
    println!();
    print_rarest(
        find(7),
        false,
        "Figure 6 — number of rarest pieces, torrent 7",
    );
    println!();
    let (pieces, blocks) = exp::interarrivals(find(10));
    print_interarrival(&pieces, "Figure 7 — piece interarrival CDF, torrent 10");
    println!();
    print_interarrival(&blocks, "Figure 8 — block interarrival CDF, torrent 10");
    println!();
    print_fairness(&exp::fig9(&outcomes), "Figure 9 — fairness, leecher state");
    println!();
    print_fig10(find(7));
    println!();
    print_fairness(&exp::fig11(&outcomes), "Figure 11 — fairness, seed state");
    println!();
    print_ablation_picker(cfg);
    println!();
    print_ablation_seed_choke(cfg);
    println!();
    print_ablation_tft(cfg);
    println!();
    print_ablation_endgame(cfg);
    println!();
    print_ablation_fastext(cfg);
    println!();
    print_ablation_superseed(cfg);
    println!();
    print_ablation_pex(cfg);
    println!();
    print_msgstats_from(find(7));
    println!();
    print_equilibrium_from(find(7));
    println!();
    print_capacity(cfg);
}

/// msgstats renderer reusing an existing outcome (for `all`).
fn print_msgstats_from(o: &ScenarioOutcome) {
    let stats = bt_analysis::MessageStats::from_trace(&o.trace);
    println!("Message statistics — torrent 7 (§III-C full message log)\n");
    let rows: Vec<Vec<String>> = stats
        .counts
        .iter()
        .map(|(kind, c)| vec![kind.clone(), c.sent.to_string(), c.received.to_string()])
        .collect();
    println!("{}", table(&["kind", "sent", "received"], &rows));
    println!(
        "control bytes: {}   data bytes: {}   overhead: {:.4} control B per data B",
        stats.control_bytes,
        stats.data_bytes,
        stats.overhead_ratio()
    );
}

/// equilibrium renderer reusing an existing outcome (for `all`).
fn print_equilibrium_from(o: &ScenarioOutcome) {
    let (ls, ss) = bt_analysis::equilibrium(&o.trace);
    println!("Choke equilibrium — torrent 7 (§IV-B.2's future-work analysis)\n");
    let rows = vec![
        vec![
            "leecher".to_string(),
            ls.tenures.to_string(),
            secs(ls.mean_tenure_secs),
            secs(ls.median_tenure_secs()),
            format!("{:.2}", ls.top3_unchoke_share),
            format!("{:.2}", ls.churn_per_round),
        ],
        vec![
            "seed".to_string(),
            ss.tenures.to_string(),
            secs(ss.mean_tenure_secs),
            secs(ss.median_tenure_secs()),
            format!("{:.2}", ss.top3_unchoke_share),
            format!("{:.2}", ss.churn_per_round),
        ],
    ];
    println!(
        "{}",
        table(
            &[
                "state",
                "tenures",
                "mean tenure",
                "median",
                "top-3 share",
                "churn/round"
            ],
            &rows
        )
    );
}
