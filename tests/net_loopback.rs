//! Cross-crate end-to-end test: a real loopback-TCP swarm driven by
//! `bt-net`, its traces checked with the `bt-analysis` pipeline.
//!
//! One seed plus three leechers share a 64-piece torrent of real
//! synthetic data over `127.0.0.1` sockets. Every piece is SHA-1
//! verified by the engine on arrival (`DataMode::Real`), so completion
//! alone proves payload integrity end to end. The captured traces must
//! be sane inputs for the paper's figures: timestamps in order, entropy
//! computable, piece interarrivals non-negative.

use bt_repro::analysis::{entropy, SessionSummary};
use bt_repro::instrument::TraceEvent;
use bt_repro::net::{run_loopback_swarm, LoopbackSpec};
use bt_repro::obs::{to_prometheus, Registry};

#[test]
fn loopback_swarm_completes_and_traces_analyse() {
    let spec = LoopbackSpec::default(); // 1 seed + 3 leechers, 64 pieces
    let seeds = spec.seeds;
    let leechers = spec.leechers;
    let num_pieces = (spec.total_len / u64::from(spec.piece_len)) as u32;
    let piece_len = spec.piece_len;

    let result = run_loopback_swarm(spec).expect("loopback swarm runs");

    // Every leecher downloads the whole torrent, SHA-1 verified.
    assert_eq!(
        result.completed_leechers,
        leechers,
        "all leechers must complete; outcomes: {:?}",
        result
            .outcomes
            .iter()
            .map(|o| (o.is_seed, o.pieces))
            .collect::<Vec<_>>()
    );
    for (i, outcome) in result.outcomes.iter().enumerate() {
        assert_eq!(outcome.pieces, num_pieces, "peer {i} must hold every piece");
        assert!(outcome.is_seed);
        assert_eq!(outcome.stats.protocol_errors, 0, "peer {i} saw a violation");
    }

    // The tracker saw the full lifecycle.
    assert_eq!(result.tracker_started, (seeds + leechers) as u64);
    assert!(result.tracker_completed >= leechers as u64);

    // Each trace must be a valid analysis input.
    for (i, outcome) in result.outcomes.iter().enumerate() {
        let trace = outcome.trace.as_ref().expect("recording was on");
        assert!(!trace.is_empty(), "peer {i} recorded nothing");

        // Timestamps non-decreasing and inside the session.
        let mut prev = bt_repro::wire::time::Instant::ZERO;
        for &(t, _) in &trace.events {
            assert!(t >= prev, "peer {i}: trace timestamps went backwards");
            assert!(t <= trace.meta.session_end, "peer {i}: event after end");
            prev = t;
        }

        // Piece completions arrive in non-negative interarrival order by
        // construction; check the engine reported each piece only once.
        let mut seen = std::collections::HashSet::new();
        for (_, ev) in trace.iter() {
            if let TraceEvent::PieceCompleted { piece } = ev {
                assert!(seen.insert(*piece), "peer {i}: duplicate piece {piece}");
            }
        }

        // Entropy must be computable over the peers this node met.
        let summary = entropy(trace);
        for ratios in &summary.peers {
            assert!(
                ratios.local_in_remote.is_finite() && ratios.remote_in_local.is_finite(),
                "peer {i}: entropy ratio not finite"
            );
            assert!(ratios.membership_secs >= 0.0);
        }
    }

    // The full figure pipeline runs on a leecher trace without panicking
    // and sees the complete download.
    let leecher_trace = result.outcomes[seeds]
        .trace
        .as_ref()
        .expect("leecher trace recorded");
    let summary = SessionSummary::from_trace(leecher_trace, piece_len);
    assert_eq!(summary.pieces.count as u32, num_pieces);
    assert!(summary.connections >= 1, "leecher must have met peers");
    assert!(summary.messages.overhead_ratio() >= 0.0);
}

/// The `bt-obs` integration over real sockets: a swarm sharing one
/// registry produces a parseable snapshot with non-zero traffic
/// counters, per-peer labels, engine-level series, and a populated
/// handshake-latency histogram — the CI contract for `--metrics`.
#[test]
fn loopback_swarm_reports_metrics() {
    let registry = Registry::new_wall();
    let spec = LoopbackSpec {
        seeds: 1,
        leechers: 1,
        total_len: 8 * 32 * 1024,
        max_wall: std::time::Duration::from_secs(30),
        metrics: Some(registry.clone()),
        ..LoopbackSpec::default()
    };
    let result = run_loopback_swarm(spec).expect("loopback swarm runs");
    assert_eq!(result.completed_leechers, 1, "leecher must finish");

    let snap = registry.snapshot();

    // The JSONL snapshot must be valid JSON with the expected shape.
    let line = snap.to_jsonl_line();
    let parsed: serde_json::Value =
        serde_json::from_str(&line).expect("snapshot line parses as JSON");
    let serde_json::Value::Object(top) = parsed else {
        panic!("snapshot is not a JSON object");
    };
    for key in ["t", "counters", "gauges", "histograms"] {
        assert!(top.contains_key(key), "snapshot missing {key:?}");
    }

    // Real bytes moved in both directions, on distinguishable per-peer
    // series that agree with the aggregate.
    assert!(snap.counter_sum("net.bytes_in") > 0, "no bytes read");
    assert!(snap.counter_sum("net.bytes_out") > 0, "no bytes written");
    let per_peer: u64 = (0..2)
        .map(|i| {
            snap.counter("net.bytes_in", &format!("peer{i}"))
                .expect("per-peer bytes_in series")
        })
        .sum();
    assert_eq!(per_peer, snap.counter_sum("net.bytes_in"));

    // Both ends completed at least one handshake (cross-dials and
    // duplicate-connection refusals can add more), and latency was
    // observed for each.
    assert!(snap.counter_sum("net.handshakes_ok") >= 2);
    let hist = snap
        .histogram("net.handshake_us", "peer0")
        .expect("handshake histogram registered");
    assert!(hist.count >= 1, "handshake latency never observed");

    // Engine-level series ride the same registry under the same labels.
    assert!(snap.counter_sum("core.inputs.message") > 0);
    assert!(snap.counter_sum("core.actions.send") > 0);
    assert_eq!(snap.counter_sum("core.pieces_completed"), 8);

    // The Prometheus exposition covers the same series.
    let prom = to_prometheus(&snap);
    assert!(prom.contains("net_bytes_in{label=\"peer0\"}"));
    assert!(prom.contains("net_handshake_us_count"));

    // The legacy NetStats view and the registry agree.
    let stats_msgs: u64 = result.outcomes.iter().map(|o| o.stats.messages_in).sum();
    assert_eq!(stats_msgs, snap.counter_sum("net.messages_in"));
}
