//! Free riders vs the choke algorithm (§IV-B): free riders are not
//! starved — they soak up *excess* capacity — but they cannot beat the
//! contributing leechers, and the swarm stays viable.
//!
//! ```sh
//! cargo run --release --example free_riders
//! ```

use bt_repro::sim::{BehaviorProfile, CapacityClass, Role, Swarm, SwarmSpec};
use bt_repro::wire::peer_id::ClientKind;
use bt_repro::wire::time::Duration;

fn main() {
    let honest = 10usize;
    let riders = 4usize;
    let background = 14usize;
    // A steady-state swarm: two slow seeds plus a prepopulated background
    // population, so *upload bandwidth* — not piece scarcity — is the
    // contended resource. That is the regime where the choke algorithm's
    // reciprocation discrimination shows.
    let mut peers = vec![BehaviorProfile::seed(), BehaviorProfile::seed()];
    for i in 0..background {
        peers.push(BehaviorProfile {
            role: Role::Leecher,
            client: ClientKind::LibTorrent,
            capacity: CapacityClass::Dsl,
            join_at: Duration::from_secs(i as u64),
            seed_linger: Some(Duration::from_secs(180)),
            depart_at: None,
            prepopulate: true,
            restart_after: None,
        });
    }
    // Measured cohorts join the running torrent together at t = 120 s,
    // with identical DSL access links: any outcome gap is the choke
    // algorithm's doing, not a capacity artefact.
    for i in 0..honest {
        peers.push(BehaviorProfile {
            role: Role::Leecher,
            client: ClientKind::Mainline402,
            capacity: CapacityClass::Dsl,
            join_at: Duration::from_secs(120 + i as u64),
            seed_linger: Some(Duration::from_secs(1200)),
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
    }
    for i in 0..riders {
        peers.push(BehaviorProfile {
            role: Role::FreeRider,
            client: ClientKind::FreeRider,
            capacity: CapacityClass::Dsl,
            join_at: Duration::from_secs(120 + i as u64),
            seed_linger: None,
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
    }
    let spec = SwarmSpec {
        seed: 11,
        total_len: 64 * 256 * 1024, // 16 MB
        piece_len: 256 * 1024,
        duration: Duration::from_secs(5 * 3600),
        peers,
        local: None,
        ..SwarmSpec::default()
    };
    println!("2 seeds, {background} background leechers, {honest} honest + {riders} free riders joining at 120 s ...");
    let result = Swarm::new(spec).run();

    let time = |i: usize| result.completion[i].map(|t| t.as_secs_f64() - 120.0);
    let h0 = 2 + background;
    let honest_times: Vec<f64> = (h0..h0 + honest).filter_map(time).collect();
    let rider_times: Vec<f64> = (h0 + honest..h0 + honest + riders)
        .filter_map(time)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;

    println!(
        "honest  done {}/{honest}, mean download {:>6.0} s",
        honest_times.len(),
        mean(&honest_times)
    );
    println!(
        "riders  done {}/{riders}, mean download {:>6.0} s",
        rider_times.len(),
        mean(&rider_times)
    );

    // The paper's two claims (§IV-B.1): free riders may use excess
    // capacity — "leechers are allowed to use the excess capacity" — so
    // they are *not* starved...
    assert!(
        !rider_times.is_empty(),
        "free riders should still finish eventually"
    );
    // ...but "free riders cannot receive more than contributing
    // leechers": they must not come out ahead (a small tolerance absorbs
    // seeding randomness).
    assert!(
        mean(&rider_times) >= 0.95 * mean(&honest_times),
        "free riders came out ahead of contributors: {} vs {}",
        mean(&rider_times),
        mean(&honest_times)
    );
    println!(
        "\nfree riders took ×{:.2} the contributors' download time — served from excess\n\
         capacity, but never ahead of them: exactly the fairness the paper defends.",
        mean(&rider_times) / mean(&honest_times)
    );
}
