//! Time sources for the metrics registry.
//!
//! Every timestamp and latency measurement in `bt-obs` flows through a
//! [`TimeSource`] so the same instrumentation is *deterministic* under
//! a driver with a virtual clock (the simulator advances a
//! [`TimeSource::manual`] source to its event time) and *real* under a
//! wall-clock driver (`bt-net` uses [`TimeSource::wall`]).
//!
//! All readings are in microseconds, matching `bt_wire::time::Instant`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Source {
    /// Real elapsed time since the source was created.
    Wall(std::time::Instant),
    /// A manually-advanced virtual clock (monotonic, never rewinds).
    Manual(Arc<AtomicU64>),
}

/// A monotonic clock in microseconds; see the [module docs](self).
#[derive(Clone, Debug)]
pub struct TimeSource(Source);

impl TimeSource {
    /// Real wall-clock time, measured from now.
    pub fn wall() -> TimeSource {
        TimeSource(Source::Wall(std::time::Instant::now()))
    }

    /// A virtual clock starting at 0, advanced by [`advance_to`](Self::advance_to).
    pub fn manual() -> TimeSource {
        TimeSource(Source::Manual(Arc::new(AtomicU64::new(0))))
    }

    /// Current reading in microseconds.
    pub fn now_micros(&self) -> u64 {
        match &self.0 {
            Source::Wall(epoch) => epoch.elapsed().as_micros() as u64,
            Source::Manual(t) => t.load(Ordering::Relaxed),
        }
    }

    /// Advance a manual source to `micros` (monotonic max, so several
    /// drivers sharing one registry may all report their local time).
    /// No-op on a wall source.
    pub fn advance_to(&self, micros: u64) {
        if let Source::Manual(t) = &self.0 {
            t.fetch_max(micros, Ordering::Relaxed);
        }
    }

    /// True if this is a manually-advanced (virtual) source.
    pub fn is_manual(&self) -> bool {
        matches!(self.0, Source::Manual(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_starts_at_zero_and_never_rewinds() {
        let t = TimeSource::manual();
        assert!(t.is_manual());
        assert_eq!(t.now_micros(), 0);
        t.advance_to(500);
        t.advance_to(100); // rewind attempt ignored
        assert_eq!(t.now_micros(), 500);
    }

    #[test]
    fn manual_clones_share_state() {
        let a = TimeSource::manual();
        let b = a.clone();
        b.advance_to(77);
        assert_eq!(a.now_micros(), 77);
    }

    #[test]
    fn wall_advances() {
        let t = TimeSource::wall();
        assert!(!t.is_manual());
        let a = t.now_micros();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(t.now_micros() > a);
        t.advance_to(u64::MAX); // no-op on wall sources
    }
}
