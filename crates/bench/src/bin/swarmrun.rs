//! `swarmrun` — run a swarm scenario from a JSON spec file.
//!
//! ```text
//! swarmrun <spec.json> [--topology NAME|file.json] [--trace out.jsonl]
//!          [--trace-sample N] [--flight-recorder DIR]
//!          [--metrics out.jsonl] [--series out.json] [--emit-dir DIR]
//!          [--watch-addr 127.0.0.1:PORT] [--watch-linger SECS]
//!          [--profile out.json] [--status] [--example]
//! swarmrun --scenario NAME [--peers N] [--seed N]
//!          [--topology NAME|file.json] [--metrics out.jsonl]
//!          [--series out.json] [--emit-dir DIR]
//!          [--watch-addr ADDR] [--profile out.json]
//!          [--trace-sample N] [--flight-recorder DIR] [--status]
//! swarmrun --table1 [--quick] [--seed N] [--jobs N]
//!          [--topology NAME|file.json] [--series out.json]
//!          [--trace out.json] [--trace-sample N] [--flight-recorder DIR]
//!          [--profile out.json]
//! swarmrun --net [--seeds N] [--leechers N] [--pieces N] [--seed N]
//!          [--trace out.jsonl] [--trace-sample N] [--flight-recorder DIR]
//!          [--metrics out.jsonl] [--series out.json]
//!          [--profile out.json] [--watch-addr 127.0.0.1:PORT] [--status]
//! ```
//!
//! * `--scenario NAME` runs a named preset instead of a spec file:
//!   `flash_crowd_1k`, `flash_crowd_10k`, `flash_crowd_100k` (the
//!   mega-swarm flash crowds; `--peers N` overrides the leecher count).
//!   Every simulator run ends by printing `run digest`, a 64-bit
//!   fingerprint of the complete deterministic outcome — compare it
//!   across machines or job counts to check byte-identical replay;
//! * `--topology NAME|file.json` replaces the spec's network model
//!   with a full-duplex WAN topology: a built-in preset
//!   (`homogeneous`, `asymmetric_dsl`, `two_isp_bottleneck`) or a
//!   topology JSON file (schema: DESIGN.md §10). Works on spec-file,
//!   `--scenario` and `--table1` runs; the run stays deterministic;
//! * `--example` prints a complete, runnable spec to stdout and exits;
//! * `--trace FILE` writes the instrumented peer's trace as JSON lines.
//!   With `--trace-sample` it instead writes the *causal* trace: Chrome
//!   trace-event JSON (open FILE in Perfetto / `chrome://tracing`) plus
//!   the sorted deterministic JSONL next to it as `FILE.jsonl`;
//! * `--trace-sample N` turns on the causal tracer at sampling rate
//!   `1/N` (piece lifecycles, choke-decision audits, message
//!   provenance; DESIGN.md §11). Sampling hashes ids with splitmix64 —
//!   it never touches the swarm RNG, so traced runs replay the same
//!   digest byte-for-byte. Works in every mode; `--table1` exports one
//!   JSON object keyed by torrent label;
//! * `--flight-recorder DIR` keeps a bounded ring of recent trace and
//!   log events and dumps a self-contained crash bundle into DIR when a
//!   live-monitor invariant trips, on panic, or on `GET /flightrec`
//!   (with `--watch-addr`);
//! * `--emit-dir DIR` drops every artifact for the run in one
//!   directory in the layout `btstat` ingests: `run.json` (manifest
//!   with scenario, seed, digest), `metrics.jsonl`, `series.json`,
//!   `profile.json` and `trace.jsonl` (causal tracer at rate 1 unless
//!   `--trace-sample` overrides it). Explicit `--metrics`/`--series`/
//!   `--profile` paths take precedence over the defaults inside DIR.
//!   Run the same spec with two seeds and feed both directories to
//!   `btstat merge`, `diff` or `bisect`;
//! * `--metrics FILE` writes `bt-obs` registry snapshots as JSON lines
//!   (one per sampling period plus a final one) and prints a summary.
//!   Simulator runs use a virtual-clock registry, so the file is
//!   byte-identical for a given spec and seed; `--net` runs sample a
//!   shared wall-clock registry periodically. If the run panics, a
//!   drop guard still flushes a final snapshot to the file;
//! * `--series FILE` writes the observatory time-series as JSON: per-key
//!   `[t_micros, value]` rings sampled once per metrics period, plus the
//!   `live.*` health series. Simulator and `--table1` series use the
//!   virtual clock (byte-identical for a given spec and seed, any
//!   `--jobs`); `--net` series sample the shared wall-clock registry;
//! * `--profile FILE` attaches a span profiler, writes the aggregated
//!   call-tree profile as JSON and prints the pretty report. Simulator
//!   and `--table1` profiles use the virtual clock (byte-identical for
//!   a given seed, any `--jobs`); `--net` profiles measure wall time;
//! * `--watch-addr ADDR` serves the live observatory over HTTP for the
//!   duration of the run — `GET /` (dashboard), `/series`, `/health`,
//!   `/metrics` — in both simulator and `--net` modes (a polling thread
//!   snapshots the registry while the run proceeds; port 0 picks an
//!   ephemeral port, printed on stderr). `--metrics-addr` is the old
//!   name and still works. Simulated runs exit when the event queue
//!   drains; `--watch-linger SECS` keeps the endpoint up that much
//!   longer so a browser or CI curl can still scrape the final state;
//! * `--status` shows live one-line progress on stderr (net mode; the
//!   simulator replays its sampled status lines after the run). When
//!   stderr is not a terminal each sample becomes its own line instead
//!   of rewriting one;
//! * `--table1` runs the whole 26-torrent Table I sweep on a worker
//!   pool (`--jobs N`, default: all cores) and prints one summary line
//!   per torrent — traces are identical for any job count;
//! * `--net` runs a real-socket loopback swarm through `bt-net`: one
//!   engine thread per peer, TCP on 127.0.0.1, and the same analysis
//!   pipeline applied to the captured traces;
//! * otherwise the run's summary (completions, tracker stats, headline
//!   analysis metrics) is printed.
//!
//! The spec format is `bt_sim::SwarmSpec` serialised as JSON; identical
//! specs replay bit-for-bit. `--net` runs are *not* deterministic — the
//! kernel schedules the threads — but every protocol invariant still
//! holds.

use bt_analysis::SessionSummary;
use bt_net::LoopbackSpec;
use bt_obs::{summary_text, Profile, Profiler, Registry, Snapshot, TimeSource};
use bt_sim::{BehaviorProfile, NetModel, Swarm, SwarmSpec, TopologySpec};
use bt_torrents::RunConfig;
use bt_wire::time::Duration;
use std::io::{IsTerminal, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--example") {
        print_example();
        return;
    }
    if args.iter().any(|a| a == "--table1") {
        run_table1_sweep(&args);
        return;
    }
    if args.iter().any(|a| a == "--net") {
        run_net_swarm(&args);
        return;
    }
    if let Some(name) = flag_str(&args, "--scenario") {
        let mut spec = scenario_spec(&name, &args);
        if let Some(net) = topology_net(&args) {
            spec.net = Some(net);
        }
        run_sim(spec, &args);
        return;
    }
    // Flag values double as positional-arg lookalikes; skip them when
    // searching for the spec path.
    let flag_values: Vec<usize> = [
        "--trace",
        "--trace-sample",
        "--flight-recorder",
        "--metrics",
        "--series",
        "--profile",
        "--emit-dir",
        "--watch-addr",
        "--watch-linger",
        "--topology",
    ]
    .iter()
    .filter_map(|f| args.iter().position(|a| a == f).map(|i| i + 1))
    .collect();
    let Some(path) = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && !flag_values.contains(i))
        .map(|(_, a)| a)
    else {
        eprintln!(
            "usage: swarmrun <spec.json> [--topology NAME|file.json] [--trace out.jsonl] [--trace-sample N] [--flight-recorder DIR] [--metrics out.jsonl] [--series out.json] [--emit-dir DIR] [--watch-addr ADDR] [--watch-linger SECS] [--profile out.json] [--status] [--example]\n       swarmrun --scenario flash_crowd_1k|flash_crowd_10k|flash_crowd_100k [--peers N] [--seed N] [--topology NAME|file.json] [--emit-dir DIR] [...]\n       swarmrun --table1 [--quick] [--seed N] [--jobs N] [--topology NAME|file.json] [--series out.json] [--trace out.json] [--trace-sample N] [--flight-recorder DIR] [--profile out.json]\n       swarmrun --net [--seeds N] [--leechers N] [--pieces N] [--seed N] [--trace out.jsonl] [--trace-sample N] [--flight-recorder DIR] [--metrics out.jsonl] [--series out.json] [--profile out.json] [--watch-addr ADDR] [--status]"
        );
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("swarmrun: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut spec: SwarmSpec = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("swarmrun: invalid spec: {e}");
        std::process::exit(2);
    });
    if let Some(net) = topology_net(&args) {
        spec.net = Some(net);
    }
    run_sim(spec, &args);
}

/// `--topology NAME|file.json`: a built-in preset name or a topology
/// JSON file (schema: DESIGN.md §10), applied as the spec's full-duplex
/// network model.
fn topology_net(args: &[String]) -> Option<NetModel> {
    let value = flag_str(args, "--topology")?;
    if let Some(model) = NetModel::preset(&value) {
        return Some(model);
    }
    let text = std::fs::read_to_string(&value).unwrap_or_else(|e| {
        eprintln!(
            "swarmrun: --topology {value}: not one of {:?} and not a readable file: {e}",
            bt_sim::PRESET_NAMES
        );
        std::process::exit(2);
    });
    match TopologySpec::from_json(&text) {
        Ok(spec) => Some(NetModel::FullDuplex(spec)),
        Err(e) => {
            eprintln!("swarmrun: --topology {value}: {e}");
            std::process::exit(2);
        }
    }
}

/// Build a named preset spec (`--scenario`).
fn scenario_spec(name: &str, args: &[String]) -> SwarmSpec {
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse::<u64>().unwrap_or_else(|_| {
                    eprintln!("swarmrun: {flag} needs an integer");
                    std::process::exit(2);
                })
            })
    };
    let default_peers = match name {
        "flash_crowd_1k" => 1_000,
        "flash_crowd_10k" => 10_000,
        "flash_crowd_100k" => 100_000,
        other => {
            eprintln!(
                "swarmrun: unknown scenario {other:?} (expected flash_crowd_1k, \
                 flash_crowd_10k or flash_crowd_100k)"
            );
            std::process::exit(2);
        }
    };
    let peers = flag_value("--peers")
        .map(|n| n as usize)
        .unwrap_or(default_peers);
    let opts = bt_torrents::PresetOptions {
        seed: flag_value("--seed").unwrap_or(42),
        pieces: 8,
        duration: Duration::from_secs(900),
        ..bt_torrents::PresetOptions::default()
    };
    bt_torrents::scenarios::mega_flash_crowd(peers, &opts)
}

/// Run a simulator spec and print the standard summary (the spec-file
/// and `--scenario` paths share this).
fn run_sim(spec: SwarmSpec, args: &[String]) {
    let trace_out = flag_str(args, "--trace");
    // `--emit-dir` defaults every artifact path into one directory (the
    // layout `btstat` loads); explicit per-artifact flags still win.
    let emit_dir = flag_str(args, "--emit-dir");
    if let Some(dir) = &emit_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("swarmrun: cannot create {dir}: {e}");
            std::process::exit(2);
        });
    }
    let in_dir = |name: &str| emit_dir.as_ref().map(|d| format!("{d}/{name}"));
    let metrics_out = flag_str(args, "--metrics").or_else(|| in_dir("metrics.jsonl"));
    let series_out = flag_str(args, "--series").or_else(|| in_dir("series.json"));
    let profile_out = flag_str(args, "--profile").or_else(|| in_dir("profile.json"));
    let watch_addr = flag_str(args, "--watch-addr").or_else(|| flag_str(args, "--metrics-addr"));
    let watch_linger = flag_u64(args, "--watch-linger").unwrap_or(0);
    let status = args.iter().any(|a| a == "--status");
    let peers = spec.peers.len();
    let piece_len = spec.piece_len;
    let pieces = spec.total_len.div_ceil(u64::from(spec.piece_len));
    eprintln!(
        "running {peers} peers, {pieces} pieces, {} s session (seed {}, net {}) ...",
        spec.duration.0 / 1_000_000,
        spec.seed,
        spec.net_model().label()
    );
    let local = spec.local;
    let seed = spec.seed;
    // The causal tracer and flight recorder sample on the spec seed;
    // `--emit-dir` turns the tracer on at rate 1 (every chain) so the
    // emitted trace.jsonl is bisectable, unless `--trace-sample` says
    // otherwise. The tracer never touches the swarm RNG, so the digest
    // stays comparable with un-traced runs.
    let default_rate = if emit_dir.is_some() { 1 } else { 0 };
    let (tracer, flight) = causal_obs(args, seed, default_rate);
    let mut swarm = Swarm::new(spec);
    if let Some(t) = &tracer {
        swarm = swarm.with_trace(t.clone());
    }
    if let Some(fr) = &flight {
        swarm = swarm.with_flight_recorder(fr.clone());
    }
    // A flight recorder forces the registry + health monitors on, so the
    // invariant-trip dump path is armed even without `--metrics`.
    let registry = (metrics_out.is_some()
        || series_out.is_some()
        || watch_addr.is_some()
        || status
        || flight.is_some())
    .then(Registry::new_manual);
    if let Some(reg) = &registry {
        // Virtual-clock registry: the snapshot file is a deterministic
        // function of the spec and seed.
        swarm = swarm.with_metrics(reg.clone());
        // The observatory rides the same sampling events: time-series
        // rings and the paper-invariant health monitors, both equally
        // deterministic.
        swarm = swarm.with_health(bt_analysis::live::Thresholds::default());
    }
    let series = match (&registry, series_out.is_some() || watch_addr.is_some()) {
        (Some(reg), true) => Some(bt_obs::SeriesStore::new(reg)),
        _ => None,
    };
    if let Some(store) = &series {
        swarm = swarm.with_series(store.clone());
    }
    // If the run panics, unwinding still flushes a final snapshot.
    let mut flush_guard = match (&registry, &metrics_out) {
        (Some(reg), Some(path)) => Some(MetricsFlushGuard::new(reg.clone(), path.clone())),
        _ => None,
    };
    // Keep a handle so `--watch-addr` can serve `/profile` mid-run; the
    // final write still uses the snapshot the swarm returns.
    let profiler = profile_out
        .as_ref()
        .map(|_| Profiler::new(TimeSource::manual()));
    if let Some(p) = &profiler {
        swarm = swarm.with_profiler(p.clone());
    }

    // `--watch-addr`: the simulator itself is synchronous, so the
    // observatory serves from a polling thread that snapshots the shared
    // registry while the event loop runs on this one. Gauges lag the
    // virtual clock by at most one sampling period; the dashboard,
    // `/series`, `/health` and `/metrics` are all live mid-run.
    let server_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let server = watch_addr.as_ref().map(|addr| {
        let reg = registry.clone().expect("watch-addr forces a registry");
        let mut server = bt_net::ObsServer::bind(addr, reg).unwrap_or_else(|e| {
            eprintln!("swarmrun: cannot bind {addr}: {e}");
            std::process::exit(2);
        });
        if let Some(store) = &series {
            server = server.with_series(store.clone());
        }
        let monitor = swarm.health_monitor().cloned();
        if let Some(m) = monitor {
            server = server.with_health_json(move || m.report().to_json());
        }
        if let Some(t) = &tracer {
            server = server.with_tracer(t.clone());
        }
        if let Some(fr) = &flight {
            server = server.with_flight_recorder(fr.clone());
        }
        if let Some(p) = &profiler {
            server = server.with_profiler(p.clone());
        }
        match server.local_addr() {
            Ok(bound) => eprintln!("observatory      : http://{bound}/ (dashboard)"),
            Err(e) => eprintln!("swarmrun: observatory bound, address unknown: {e}"),
        }
        let stop = std::sync::Arc::clone(&server_stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                if !server.poll() {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
        })
    });

    let t0 = std::time::Instant::now();
    let result = swarm.run();
    let wall = t0.elapsed();

    if server.is_some() && watch_linger > 0 {
        eprintln!("observatory      : lingering {watch_linger} s after the run (Ctrl-C to stop)");
        std::thread::sleep(std::time::Duration::from_secs(watch_linger));
    }
    server_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(handle) = server {
        let _ = handle.join();
    }

    if status {
        // The simulator runs synchronously in virtual time; replay the
        // sampled status line per snapshot instead of live updates.
        let mut line = StatusLine::new();
        for snap in &result.metrics {
            line.update(&sim_status_line(snap));
        }
        line.finish();
    }
    if let Some(path) = &metrics_out {
        write_snapshots(path, &result.metrics);
        if let Some(guard) = flush_guard.as_mut() {
            guard.disarm();
        }
        println!(
            "metrics written  : {path} ({} snapshots)",
            result.metrics.len()
        );
        if let Some(last) = result.metrics.last() {
            print!("{}", summary_text(last));
        }
    }
    if let (Some(path), Some(store)) = (&series_out, &series) {
        std::fs::write(path, store.to_json(None)).unwrap_or_else(|e| {
            eprintln!("swarmrun: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("series written   : {path} ({} series)", store.len());
    }
    if let Some(health) = &result.health {
        println!("health           : {}", health.summary_line());
    }
    if let Some(path) = &profile_out {
        write_profile(path, result.profile.as_ref().unwrap_or(&Profile::default()));
    }
    println!(
        "events processed : {} in {:.2?} wall ({:.0} events/s)",
        result.events_processed,
        wall,
        result.events_processed as f64 / wall.as_secs_f64().max(1e-9)
    );
    println!("peers completed  : {} / {peers}", result.completed_peers);
    println!(
        "tracker          : {} started, {} completed announces",
        result.tracker_started, result.tracker_completed
    );
    println!("run digest       : {:016x}", result.digest());
    if let Some(dir) = &emit_dir {
        // Finish the directory: the sorted deterministic trace plus the
        // manifest that names the run for `btstat`.
        if let Some(t) = &tracer {
            t.flush_local();
            let path = format!("{dir}/trace.jsonl");
            std::fs::write(&path, t.to_jsonl()).unwrap_or_else(|e| {
                eprintln!("swarmrun: cannot write {path}: {e}");
                std::process::exit(2);
            });
        }
        let scenario = flag_str(args, "--scenario").unwrap_or_else(|| "spec".to_string());
        let manifest = bt_stat::artifacts::manifest_json(
            &scenario,
            seed,
            peers as u64,
            pieces,
            result.events_processed,
            result.completed_peers as u64,
            &format!("{:016x}", result.digest()),
        );
        let path = format!("{dir}/run.json");
        std::fs::write(&path, manifest).unwrap_or_else(|e| {
            eprintln!("swarmrun: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("artifacts        : {dir}/ (run.json, metrics.jsonl, series.json, profile.json, trace.jsonl)");
    }
    if let Some(t) = &tracer {
        if let Some(path) = &trace_out {
            write_causal_trace(path, t);
        } else {
            t.flush_local();
            println!(
                "causal trace     : {} events sampled (pass --trace FILE to export)",
                t.to_jsonl().lines().count()
            );
        }
        if let Some(fr) = &flight {
            println!(
                "flight recorder  : {} recent events in the ring",
                fr.trace_slice().len()
            );
        }
    }
    if let Some(idx) = local {
        if let Some(t) = result.completion.get(idx).copied().flatten() {
            println!(
                "local peer {idx}    : completed at {:.0} s",
                t.as_secs_f64()
            );
        } else {
            println!("local peer {idx}    : did not complete");
        }
    }
    if let Some(trace) = result.trace {
        let summary = SessionSummary::from_trace(&trace, piece_len);
        println!("trace events     : {}", trace.len());
        println!(
            "entropy a/b      : p20={:.2} p50={:.2} p80={:.2} over {} leechers",
            summary.entropy.local_in_remote.p20,
            summary.entropy.local_in_remote.p50,
            summary.entropy.local_in_remote.p80,
            summary.entropy.peers.len()
        );
        println!(
            "state            : {} (missing-piece fraction {:.2})",
            if summary.replication.is_transient() {
                "transient"
            } else {
                "steady"
            },
            summary.replication.missing_piece_fraction()
        );
        println!(
            "blocks received  : {} (first-slowdown ×{:.2})",
            summary.blocks.count,
            summary.blocks.first_slowdown()
        );
        println!(
            "LS top-set share : {:.2}",
            summary.fairness_ls.top_set_upload_share()
        );
        println!(
            "peers observed   : {} connections, {} unique, {:.1} % multi-ID IPs",
            summary.connections,
            summary.unique_peers,
            summary.multi_id_ip_fraction * 100.0
        );
        println!(
            "overhead         : {:.4} control B / data B",
            summary.messages.overhead_ratio()
        );
        // With `--trace-sample` the `--trace` path carries the causal
        // trace instead (written above).
        if tracer.is_none() {
            if let Some(path) = &trace_out {
                std::fs::write(path, trace.to_jsonl()).unwrap_or_else(|e| {
                    eprintln!("swarmrun: cannot write {path}: {e}");
                    std::process::exit(2);
                });
                println!("trace written    : {path}");
            }
        }
    }
}

/// `swarmrun --net` — a real-socket loopback swarm via `bt-net`.
fn run_net_swarm(args: &[String]) {
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse::<u64>().unwrap_or_else(|_| {
                    eprintln!("swarmrun: {name} needs an integer");
                    std::process::exit(2);
                })
            })
    };
    let trace_out = flag_str(args, "--trace");
    let metrics_out = flag_str(args, "--metrics");
    let series_out = flag_str(args, "--series");
    let profile_out = flag_str(args, "--profile");
    let watch_addr = flag_str(args, "--watch-addr").or_else(|| flag_str(args, "--metrics-addr"));
    let status = args.iter().any(|a| a == "--status");
    let mut spec = LoopbackSpec::default();
    if let Some(n) = flag_value("--seeds") {
        spec.seeds = n.max(1) as usize;
    }
    if let Some(n) = flag_value("--leechers") {
        spec.leechers = n.max(1) as usize;
    }
    if let Some(n) = flag_value("--pieces") {
        spec.total_len = n.max(1) * u64::from(spec.piece_len);
    }
    if let Some(n) = flag_value("--seed") {
        spec.seed = n;
    }
    // Causal tracer: every runtime gets the shared tracer and samples
    // itself by its virtual-IP hash; the flight recorder serves
    // `GET /flightrec` and dumps a bundle if a peer thread panics.
    let (tracer, flight) = causal_obs(args, spec.seed, 0);
    spec.net.tracer = tracer.clone();
    let registry =
        (metrics_out.is_some() || series_out.is_some() || status || watch_addr.is_some())
            .then(Registry::new_wall);
    spec.metrics = registry.clone();
    // Net runs have no virtual clock; the series sample on the wall
    // clock, once per sampler tick.
    let series = match (&registry, series_out.is_some() || watch_addr.is_some()) {
        (Some(reg), true) => Some(bt_obs::SeriesStore::new(reg)),
        _ => None,
    };
    let profiler = profile_out
        .as_ref()
        .map(|_| Profiler::new(TimeSource::wall()));
    spec.profiler = profiler.clone();
    let piece_len = spec.piece_len;
    let (seeds, leechers) = (spec.seeds, spec.leechers);
    eprintln!(
        "running {seeds} seed(s) + {leechers} leecher(s), {} pieces over loopback TCP ...",
        spec.total_len / u64::from(piece_len)
    );

    // If the run panics, unwinding still flushes a final snapshot.
    let mut flush_guard = match (&registry, &metrics_out) {
        (Some(reg), Some(path)) => Some(MetricsFlushGuard::new(reg.clone(), path.clone())),
        _ => None,
    };

    // `--watch-addr`: serve the observatory for the run's duration from
    // a dedicated polling thread.
    let server_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let server = watch_addr.as_ref().map(|addr| {
        let reg = registry.clone().expect("watch-addr forces a registry");
        let mut server = bt_net::ObsServer::bind(addr, reg).unwrap_or_else(|e| {
            eprintln!("swarmrun: cannot bind {addr}: {e}");
            std::process::exit(2);
        });
        if let Some(store) = &series {
            server = server.with_series(store.clone());
        }
        if let Some(t) = &tracer {
            server = server.with_tracer(t.clone());
        }
        if let Some(fr) = &flight {
            server = server.with_flight_recorder(fr.clone());
        }
        if let Some(p) = &profiler {
            server = server.with_profiler(p.clone());
        }
        match server.local_addr() {
            Ok(bound) => eprintln!("observatory      : http://{bound}/ (dashboard)"),
            Err(e) => eprintln!("swarmrun: observatory bound, address unknown: {e}"),
        }
        let stop = std::sync::Arc::clone(&server_stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                if !server.poll() {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
        })
    });

    // Sampler thread: every 250 ms wall, snapshot the shared registry —
    // append a JSONL line, extend the time-series, update the one-line
    // status display.
    let sampler_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = registry.clone().map(|reg| {
        let stop = std::sync::Arc::clone(&sampler_stop);
        let out_path = metrics_out.clone();
        let store = series.clone();
        std::thread::spawn(move || {
            let mut out = out_path.map(|p| {
                std::fs::File::create(&p).unwrap_or_else(|e| {
                    eprintln!("swarmrun: cannot create {p}: {e}");
                    std::process::exit(2);
                })
            });
            let mut line = StatusLine::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(250));
                if let Some(s) = &store {
                    s.sample_registry();
                }
                let snap = reg.snapshot();
                if let Some(f) = out.as_mut() {
                    let _ = writeln!(f, "{}", snap.to_jsonl_line());
                }
                if status {
                    line.update(&net_status_line(&snap));
                }
            }
            line.finish();
        })
    });

    let result = bt_net::run_loopback_swarm(spec).unwrap_or_else(|e| {
        eprintln!("swarmrun: net swarm failed: {e}");
        std::process::exit(1);
    });
    sampler_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(handle) = sampler {
        let _ = handle.join();
    }
    server_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(handle) = server {
        let _ = handle.join();
    }
    if let Some(reg) = &registry {
        let last = reg.snapshot();
        if let Some(path) = &metrics_out {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(path)
                .unwrap_or_else(|e| {
                    eprintln!("swarmrun: cannot append to {path}: {e}");
                    std::process::exit(2);
                });
            let _ = writeln!(f, "{}", last.to_jsonl_line());
            if let Some(guard) = flush_guard.as_mut() {
                guard.disarm();
            }
            println!("metrics written  : {path}");
        }
        print!("{}", summary_text(&last));
    }
    if let (Some(path), Some(store)) = (&series_out, &series) {
        // One last sample so the file reflects the final state.
        store.sample_registry();
        std::fs::write(path, store.to_json(None)).unwrap_or_else(|e| {
            eprintln!("swarmrun: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("series written   : {path} ({} series)", store.len());
    }
    if let (Some(path), Some(prof)) = (&profile_out, &profiler) {
        write_profile(path, &prof.snapshot());
    }
    println!(
        "peers completed  : {} / {leechers} leechers in {:.2?} wall",
        result.completed_leechers, result.wall_elapsed
    );
    println!(
        "tracker          : {} started, {} completed announces",
        result.tracker_started, result.tracker_completed
    );
    if let Some(t) = &tracer {
        if let Some(path) = &trace_out {
            write_causal_trace(path, t);
        } else {
            println!(
                "causal trace     : {} events sampled (pass --trace FILE to export)",
                t.to_jsonl().lines().count()
            );
        }
    }
    for (i, o) in result.outcomes.iter().enumerate() {
        println!(
            "peer {i:2}          : {} {:3} pieces, {} msgs in, {} blocks out, {} ticks",
            if i < seeds { "seed,   " } else { "leecher," },
            o.pieces,
            o.stats.messages_in,
            o.stats.blocks_sent,
            o.stats.ticks
        );
    }
    // Analyse the first leecher's trace with the same pipeline the
    // simulator figures use.
    let Some(trace) = result
        .outcomes
        .iter()
        .skip(seeds)
        .find_map(|o| o.trace.as_ref())
    else {
        return;
    };
    let summary = SessionSummary::from_trace(trace, piece_len);
    println!("trace events     : {}", trace.len());
    println!(
        "entropy a/b      : p20={:.2} p50={:.2} p80={:.2} over {} peers",
        summary.entropy.local_in_remote.p20,
        summary.entropy.local_in_remote.p50,
        summary.entropy.local_in_remote.p80,
        summary.entropy.peers.len()
    );
    println!(
        "blocks received  : {} (first-slowdown ×{:.2})",
        summary.blocks.count,
        summary.blocks.first_slowdown()
    );
    println!(
        "overhead         : {:.4} control B / data B",
        summary.messages.overhead_ratio()
    );
    // With `--trace-sample` the `--trace` path carries the causal trace
    // instead (written above).
    if tracer.is_none() {
        if let Some(path) = &trace_out {
            std::fs::write(path, trace.to_jsonl()).unwrap_or_else(|e| {
                eprintln!("swarmrun: cannot write {path}: {e}");
                std::process::exit(2);
            });
            println!("trace written    : {path}");
        }
    }
}

/// `swarmrun --table1` — the Table I sweep on the parallel runner.
fn run_table1_sweep(args: &[String]) {
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse::<u64>().unwrap_or_else(|_| {
                    eprintln!("swarmrun: {name} needs an integer");
                    std::process::exit(2);
                })
            })
    };
    let mut cfg = if args.iter().any(|a| a == "--quick") {
        RunConfig::quick()
    } else {
        RunConfig::default()
    };
    if let Some(seed) = flag_value("--seed") {
        cfg.seed = seed;
    }
    let jobs = flag_value("--jobs")
        .map(|n| n.max(1) as usize)
        .unwrap_or_else(bt_torrents::default_jobs);
    let profile_out = flag_str(args, "--profile");
    cfg.profile = profile_out.is_some();
    let series_out = flag_str(args, "--series");
    cfg.series = series_out.is_some();
    cfg.trace_sample = flag_u64(args, "--trace-sample");
    cfg.flight_dir = flag_str(args, "--flight-recorder");
    let trace_out = flag_str(args, "--trace");
    if let Some(net) = topology_net(args) {
        eprintln!("table1 network model: {}", net.label());
        cfg.net = Some(net);
    }

    eprintln!("running the 26-torrent Table I sweep ({jobs} jobs) ...");
    let t0 = std::time::Instant::now();
    let outcomes = bt_torrents::run_table1_parallel(&cfg, jobs, |o| {
        eprintln!("  torrent {:2} done ({} events)", o.spec.id, o.trace.len());
    });
    println!(
        "{:>2}  {:>7}  {:>8}  {:>9}  {:>9}",
        "id", "events", "trace", "completed", "state"
    );
    for o in &outcomes {
        let summary = SessionSummary::from_trace(&o.trace, o.scaled.piece_len);
        println!(
            "{:>2}  {:>7}  {:>8}  {:>4} / {:>3}  {}",
            o.spec.id,
            o.result.events_processed,
            o.trace.len(),
            o.result.completed_peers,
            o.result.completion.len(),
            if summary.replication.is_transient() {
                "transient"
            } else {
                "steady"
            },
        );
    }
    println!(
        "swept {} torrents in {:.2?} with {jobs} jobs",
        outcomes.len(),
        t0.elapsed()
    );
    if let Some(path) = &series_out {
        // One JSON object keyed by torrent label, in Table I order; each
        // per-scenario document is deterministic, so the whole file is
        // byte-identical for any `--jobs`.
        let mut text = String::from("{");
        for (i, o) in outcomes.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            let doc = o.series.as_deref().unwrap_or("{\"series\":[]}");
            text.push_str(&format!("\"{}\":{doc}", o.spec.label()));
        }
        text.push('}');
        std::fs::write(path, text).unwrap_or_else(|e| {
            eprintln!("swarmrun: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("series written   : {path} ({} torrents)", outcomes.len());
        let unhealthy: Vec<u32> = outcomes
            .iter()
            .filter(|o| o.result.health.as_ref().is_some_and(|h| !h.healthy()))
            .map(|o| o.spec.id)
            .collect();
        if unhealthy.is_empty() {
            println!("health           : all torrents healthy at session end");
        } else {
            println!("health           : unhealthy at session end: {unhealthy:?}");
        }
    }
    if let (Some(path), true) = (&trace_out, cfg.trace_sample.is_some()) {
        // One JSON object keyed by torrent label, in Table I order; each
        // value is that scenario's Chrome trace-event document. Every
        // per-scenario trace is deterministic, so the whole file is
        // byte-identical for any `--jobs`.
        let mut text = String::from("{");
        for (i, o) in outcomes.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            let doc = o
                .trace_chrome
                .as_deref()
                .unwrap_or("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
            text.push_str(&format!("\"{}\":{doc}", o.spec.label()));
        }
        text.push('}');
        std::fs::write(path, text).unwrap_or_else(|e| {
            eprintln!("swarmrun: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("causal traces    : {path} ({} torrents)", outcomes.len());
    }
    if let Some(path) = &profile_out {
        // Each scenario profiled its own manual clock; merging in Table
        // I order (the `outcomes` order) is commutative sums, so the
        // merged profile is byte-identical for any `--jobs`.
        let mut merged = Profile::default();
        for o in &outcomes {
            if let Some(p) = &o.profile {
                merged.merge(p);
            }
        }
        write_profile(path, &merged);
    }
}

/// The string value following `name`, if present.
fn flag_str(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `--trace-sample N` / `--flight-recorder DIR`: the causal tracer and
/// flight recorder shared by every mode. Both are seeded from the run
/// seed, so the sampled id set (and the bundles' `seed` field) is a
/// function of the spec alone. `default_rate` applies when the flag is
/// absent (`--emit-dir` passes 1; everything else 0 = off).
fn causal_obs(
    args: &[String],
    seed: u64,
    default_rate: u64,
) -> (Option<bt_obs::Tracer>, Option<bt_obs::FlightRecorder>) {
    let rate = flag_u64(args, "--trace-sample").unwrap_or(default_rate);
    let flight = flag_str(args, "--flight-recorder")
        .map(|dir| bt_obs::FlightRecorder::new(&dir, 4096, seed));
    let tracer = (rate > 0).then(|| {
        let t = bt_obs::Tracer::new(seed, rate);
        match &flight {
            Some(fr) => t.with_flight(fr.clone()),
            None => t,
        }
    });
    (tracer, flight)
}

/// Write the causal trace as Chrome trace-event JSON at `path` plus the
/// sorted deterministic JSONL at `path.jsonl`.
fn write_causal_trace(path: &str, tracer: &bt_obs::Tracer) {
    tracer.flush_local();
    std::fs::write(path, tracer.to_chrome_json()).unwrap_or_else(|e| {
        eprintln!("swarmrun: cannot write {path}: {e}");
        std::process::exit(2);
    });
    let jsonl = format!("{path}.jsonl");
    std::fs::write(&jsonl, tracer.to_jsonl()).unwrap_or_else(|e| {
        eprintln!("swarmrun: cannot write {jsonl}: {e}");
        std::process::exit(2);
    });
    println!("causal trace     : {path} (Chrome JSON) + {jsonl} (sorted JSONL)");
}

/// The integer value following `name`, if present.
fn flag_u64(args: &[String], name: &str) -> Option<u64> {
    flag_str(args, name).map(|v| {
        v.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("swarmrun: {name} needs an integer");
            std::process::exit(2);
        })
    })
}

/// Write a span profile as JSON and print the pretty report.
fn write_profile(path: &str, profile: &Profile) {
    std::fs::write(path, profile.to_json()).unwrap_or_else(|e| {
        eprintln!("swarmrun: cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("profile written  : {path}");
    print!("{}", profile.render());
}

/// Live one-line progress on stderr: rewrites a single line on a
/// terminal, emits one line per sample otherwise (logs, CI), and always
/// ends with the line cleared onto its own newline.
struct StatusLine {
    tty: bool,
    active: bool,
}

impl StatusLine {
    fn new() -> StatusLine {
        StatusLine {
            tty: std::io::stderr().is_terminal(),
            active: false,
        }
    }

    fn update(&mut self, line: &str) {
        if self.tty {
            // `\r` + clear-to-end erases any longer previous line.
            eprint!("\r\x1b[K{line}");
            self.active = true;
        } else {
            eprintln!("{line}");
        }
    }

    fn finish(&mut self) {
        if self.tty && self.active {
            eprintln!();
            self.active = false;
        }
    }
}

impl Drop for StatusLine {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Flushes one final registry snapshot to the `--metrics` file when
/// dropped, unless [`disarm`](MetricsFlushGuard::disarm)ed — so a panic
/// mid-run still leaves the last observed state on disk.
struct MetricsFlushGuard {
    registry: Registry,
    path: String,
    armed: bool,
}

impl MetricsFlushGuard {
    fn new(registry: Registry, path: String) -> MetricsFlushGuard {
        MetricsFlushGuard {
            registry,
            path,
            armed: true,
        }
    }

    /// The normal write path ran; the guard has nothing left to do.
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for MetricsFlushGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let snap = self.registry.snapshot();
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        {
            let _ = writeln!(f, "{}", snap.to_jsonl_line());
        }
    }
}

/// Write one JSONL line per snapshot.
fn write_snapshots(path: &str, snapshots: &[Snapshot]) {
    let mut text = String::new();
    for snap in snapshots {
        text.push_str(&snap.to_jsonl_line());
        text.push('\n');
    }
    std::fs::write(path, text).unwrap_or_else(|e| {
        eprintln!("swarmrun: cannot write {path}: {e}");
        std::process::exit(2);
    });
}

/// One-line progress for a simulator snapshot (virtual-time registry).
fn sim_status_line(snap: &Snapshot) -> String {
    format!(
        "[t={:>6}s] peers={} done={} interested={} unchoked={} blocks={} events={}",
        snap.at_micros / 1_000_000,
        snap.gauge("sim.live_peers", "").unwrap_or(0),
        snap.gauge("sim.completed_peers", "").unwrap_or(0),
        snap.gauge("sim.interested_pairs", "").unwrap_or(0),
        snap.gauge("sim.unchoked_pairs", "").unwrap_or(0),
        snap.counter_sum("sim.blocks_delivered"),
        snap.counter_sum("sim.events"),
    )
}

/// One-line progress for a net-swarm snapshot (wall-clock registry
/// shared by every runtime; gauges sum over the per-peer labels).
fn net_status_line(snap: &Snapshot) -> String {
    let conns: i64 = snap
        .gauges
        .iter()
        .filter(|(name, _, _)| *name == "net.conns")
        .map(|(_, _, v)| *v)
        .sum();
    format!(
        "[net] conns={conns} handshakes={} in={}B out={}B blocks={} pieces={}",
        snap.counter_sum("net.handshakes_ok"),
        snap.counter_sum("net.bytes_in"),
        snap.counter_sum("net.bytes_out"),
        snap.counter_sum("net.blocks_sent"),
        snap.counter_sum("core.pieces_completed"),
    )
}

fn print_example() {
    let mut peers = vec![BehaviorProfile::seed()];
    for i in 0..8 {
        peers.push(BehaviorProfile::leecher(Duration::from_secs(i)));
    }
    let spec = SwarmSpec {
        seed: 42,
        total_len: 16 * 256 * 1024,
        piece_len: 256 * 1024,
        duration: Duration::from_secs(3600),
        peers,
        local: Some(1),
        ..SwarmSpec::default()
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&spec).expect("spec serialises")
    );
}
