//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable immutable byte buffer (`Arc`-backed
//! with an offset window); [`BytesMut`] is a growable buffer with an
//! amortised-O(1) front cursor so `advance`/`split_to` don't memmove.
//! [`Buf`]/[`BufMut`] cover the big-endian accessor subset the wire
//! codec uses.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply-cloneable immutable bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_static(b"")
    }

    /// Wrap a static slice (no allocation beyond the Arc header).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Sub-window of this buffer (shares the allocation).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer with a consuming front cursor.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Bytes before `start` have been consumed by `advance`/`split_to`/gets.
    start: usize,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True if no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Copy the unconsumed bytes to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Split off and return the first `at` unconsumed bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of range");
        let head = self.data[self.start..self.start + at].to_vec();
        self.start += at;
        self.compact();
        BytesMut {
            data: head,
            start: 0,
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.to_vec())
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Drop the consumed prefix once it dominates the buffer, keeping
    /// `advance` amortised O(1) without unbounded memory growth.
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 >= self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Read cursor over a byte buffer (big-endian accessors).
pub trait Buf {
    /// Unconsumed bytes remaining.
    fn remaining(&self) -> usize;
    /// View of the unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of range");
        self.start += cnt;
        self.compact();
    }
}

/// Write cursor appending to a byte buffer (big-endian writers).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xDEADBEEF);
        buf.put_u8(7);
        buf.put_u16(6881);
        buf.put_slice(b"xy");
        assert_eq!(buf.len(), 9);
        assert_eq!(buf.get_u32(), 0xDEADBEEF);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16(), 6881);
        assert_eq!(&buf[..], b"xy");
    }

    #[test]
    fn split_freeze_slice() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"hello world");
        let head = buf.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&buf[..], b" world");
        let frozen = head.freeze();
        assert_eq!(frozen.slice(1..4).to_vec(), b"ell");
        assert_eq!(frozen, Bytes::from_static(b"hello"));
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut buf = BytesMut::new();
        buf.put_slice(&vec![0xAB; 10_000]);
        buf.advance(6000);
        assert_eq!(buf.len(), 4000);
        assert!(buf.iter().all(|&b| b == 0xAB));
    }
}
