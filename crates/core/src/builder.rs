//! Named-parameter construction for [`Engine`].
//!
//! [`Engine::new`]'s eight positional arguments were easy to transpose
//! silently (three of them are plain integers). The builder names every
//! construction-time fact and folds the recorder in, so one chained
//! expression replaces `Engine::new(...)` + `with_recorder(...)`:
//!
//! ```
//! use bt_core::EngineBuilder;
//! use bt_piece::{Bitfield, Geometry};
//! use bt_wire::peer_id::{ClientKind, IpAddr, PeerId};
//!
//! let geometry = Geometry::new(4 * 262_144, 262_144);
//! let engine = EngineBuilder::new(geometry, [7u8; 20], PeerId::new(ClientKind::Mainline402, 1))
//!     .ip(IpAddr(0x0A00_0001))
//!     .initial_pieces(Bitfield::full(geometry.num_pieces()))
//!     .rng_seed(42)
//!     .build();
//! assert!(engine.is_seed());
//! ```

use crate::config::Config;
use crate::content::DataMode;
use crate::engine::Engine;
use crate::metrics::EngineMetrics;
use bt_instrument::trace::TraceMeta;
use bt_obs::Profiler;
use bt_piece::{Bitfield, Geometry};
use bt_wire::peer_id::{IpAddr, PeerId};
use bt_wire::sha1::Digest;

/// Builder for [`Engine`]; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    pub(crate) config: Config,
    pub(crate) geometry: Geometry,
    pub(crate) data: DataMode,
    pub(crate) info_hash: Digest,
    pub(crate) peer_id: PeerId,
    pub(crate) ip: IpAddr,
    pub(crate) initial_pieces: Option<Bitfield>,
    pub(crate) seed: u64,
    pub(crate) recorder: Option<TraceMeta>,
    pub(crate) metrics: Option<EngineMetrics>,
    pub(crate) profiler: Profiler,
}

impl EngineBuilder {
    /// Start a builder from the three facts every engine needs: the
    /// torrent's geometry, its info-hash, and the local peer ID.
    ///
    /// Defaults: [`Config::default`], [`DataMode::Virtual`], IP `0`,
    /// an empty starting bitfield (fresh leecher), RNG seed `0`, no
    /// recorder.
    pub fn new(geometry: Geometry, info_hash: Digest, peer_id: PeerId) -> EngineBuilder {
        EngineBuilder {
            config: Config::default(),
            geometry,
            data: DataMode::Virtual,
            info_hash,
            peer_id,
            ip: IpAddr(0),
            initial_pieces: None,
            seed: 0,
            recorder: None,
            metrics: None,
            profiler: Profiler::disabled(),
        }
    }

    /// Engine configuration (§III-C parameters and behaviour switches).
    pub fn config(mut self, config: Config) -> EngineBuilder {
        self.config = config;
        self
    }

    /// Content mode: verify real bytes or track metadata only.
    pub fn data(mut self, data: DataMode) -> EngineBuilder {
        self.data = data;
        self
    }

    /// The local peer's IP address (identity for `one_connection_per_ip`
    /// and for filtering the tracker's own-address echoes).
    pub fn ip(mut self, ip: IpAddr) -> EngineBuilder {
        self.ip = ip;
        self
    }

    /// Starting bitfield: full for a seed, empty for a fresh leecher,
    /// nearly full for an "almost done" joiner.
    ///
    /// # Panics
    /// [`build`](Self::build) panics if the length does not match the
    /// geometry's piece count.
    pub fn initial_pieces(mut self, pieces: Bitfield) -> EngineBuilder {
        self.initial_pieces = Some(pieces);
        self
    }

    /// Seed for the engine's private PRNG (random-first picks, choke
    /// tie-breaks). Identical seeds + identical inputs ⇒ identical
    /// outputs.
    pub fn rng_seed(mut self, seed: u64) -> EngineBuilder {
        self.seed = seed;
        self
    }

    /// Attach a §III-C trace recorder; the built engine becomes the
    /// *local* (instrumented) peer.
    pub fn recorder(mut self, meta: TraceMeta) -> EngineBuilder {
        self.recorder = Some(meta);
        self
    }

    /// Attach runtime telemetry handles (see [`EngineMetrics`]): input,
    /// action and protocol-error counters plus choke-round and
    /// piece-pick latency histograms on the handles' registry.
    pub fn metrics(mut self, metrics: EngineMetrics) -> EngineBuilder {
        self.metrics = Some(metrics);
        self
    }

    /// Attach a span profiler ([`bt_obs::Profiler`]): engine `handle()`
    /// dispatch, choke rounds and piece picks record hierarchical spans
    /// into it. Defaults to [`Profiler::disabled`], which costs a
    /// single branch per instrumented site.
    pub fn profiler(mut self, profiler: Profiler) -> EngineBuilder {
        self.profiler = profiler;
        self
    }

    /// Construct the engine.
    pub fn build(self) -> Engine {
        Engine::from_builder(self)
    }
}
