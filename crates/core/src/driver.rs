//! The sans-io driver contract: [`Input`] in, [`Actions`] out.
//!
//! The engine is a pure state machine. A *driver* — the discrete-event
//! simulator in `bt-sim`, the real-socket runtime in `bt-net`, or a unit
//! test — owns the clock and the transport, and feeds the engine through
//! exactly one entry point:
//!
//! ```text
//! let actions = engine.handle(now, input);
//! ```
//!
//! Every externally visible effect comes back as an
//! [`Action`](crate::Action) in the returned [`Actions`] buffer. Timers
//! are data, not callbacks: whenever the engine (re)arms its internal
//! rechoke timer it emits [`Action::SetTimer`](crate::Action::SetTimer),
//! and [`Engine::next_wakeup`](crate::Engine::next_wakeup) exposes the
//! pending deadline for pull-style drivers. When the deadline passes, the
//! driver feeds [`Input::Tick`] and the engine runs whatever periodic
//! duties are due (§II-C.2 choke rounds, keep-alives, peer exchange,
//! tracker refresh).
//!
//! The contract, in full:
//!
//! 1. Feed [`Input::Start`] once when the session begins.
//! 2. Translate transport events into the matching [`Input`] variants.
//! 3. After **every** `handle` call, drain the returned [`Actions`] and
//!    execute them.
//! 4. When `now >= engine.next_wakeup()`, feed [`Input::Tick`].
//!    A tick that arrives before the deadline is a harmless no-op, so
//!    over-ticking is always safe.
//! 5. If [`Actions::take_error`] yields an [`EngineError`], the remote
//!    peer violated the protocol; the engine has already cleaned up and
//!    emitted a [`Disconnect`](crate::Action::Disconnect) — close the
//!    transport and carry on.

use crate::connection::ConnId;
use crate::engine::{Action, PeerCaps};
use crate::error::EngineError;
use bt_wire::message::{BlockRef, Message};
use bt_wire::peer_id::{IpAddr, PeerId};
use bt_wire::tracker::PeerEntry;

/// One event from the outside world, fed through
/// [`Engine::handle`](crate::Engine::handle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// The session begins: announce to the tracker and arm the periodic
    /// timer. Feed exactly once, first.
    Start,
    /// A timer fired (or the driver polled). Runs every periodic duty
    /// whose deadline has passed; early ticks are no-ops.
    Tick,
    /// The tracker answered an announce with a peer list.
    TrackerResponse {
        /// Peers returned by the tracker.
        peers: Vec<PeerEntry>,
    },
    /// A connection (either direction) completed its wire handshake.
    /// The engine may refuse it — check
    /// [`Actions::take_accepted`]; `None` means the driver must close
    /// the transport.
    PeerConnected {
        /// The remote peer's address.
        ip: IpAddr,
        /// The peer ID from the remote handshake.
        peer_id: PeerId,
        /// True when the local engine dialled this connection.
        initiated_by_us: bool,
        /// Capabilities advertised in the handshake reserved bits.
        caps: PeerCaps,
    },
    /// A dial failed before the handshake completed.
    ConnectFailed,
    /// An established connection closed (remote left, transport error).
    PeerDisconnected {
        /// The connection that closed.
        conn: ConnId,
    },
    /// One decoded wire message arrived on a connection.
    Message {
        /// The connection it arrived on.
        conn: ConnId,
        /// The decoded message.
        msg: Message,
    },
    /// The transport finished sending a previously queued block
    /// ([`Action::SendBlock`](crate::Action::SendBlock)) — drives upload
    /// rate accounting.
    BlockSent {
        /// The connection the block was sent on.
        conn: ConnId,
        /// The block that completed.
        block: BlockRef,
    },
}

/// The engine's response to one [`Input`]: an ordered effect list plus
/// two side channels (the accepted connection ID for
/// [`Input::PeerConnected`], and the protocol violation, if any).
///
/// Returned by reference from [`Engine::handle`](crate::Engine::handle);
/// effects accumulate across calls until drained with [`Actions::take`]
/// (or the equivalent [`Engine::drain_actions`](crate::Engine::drain_actions)),
/// so a driver may batch several inputs before executing.
#[derive(Debug, Default)]
pub struct Actions {
    pub(crate) items: Vec<Action>,
    pub(crate) accepted: Option<ConnId>,
    pub(crate) error: Option<EngineError>,
}

impl Actions {
    /// Append an effect (engine-internal).
    pub(crate) fn push(&mut self, action: Action) {
        self.items.push(action);
    }

    /// Drain the accumulated effects, in emission order.
    pub fn take(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.items)
    }

    /// The connection ID assigned by the last
    /// [`Input::PeerConnected`], or `None` if the engine refused the
    /// connection (duplicate IP, full peer set). Consumes the value.
    pub fn take_accepted(&mut self) -> Option<ConnId> {
        self.accepted.take()
    }

    /// The protocol violation raised by the last input, if any. The
    /// engine has already cleaned up the offending connection and
    /// emitted [`Action::Disconnect`](crate::Action::Disconnect); the
    /// driver should close the transport and may log the error.
    pub fn take_error(&mut self) -> Option<EngineError> {
        self.error.take()
    }

    /// Iterate the pending effects without draining them.
    pub fn iter(&self) -> std::slice::Iter<'_, Action> {
        self.items.iter()
    }

    /// Number of pending effects.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no effects are pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<'a> IntoIterator for &'a Actions {
    type Item = &'a Action;
    type IntoIter = std::slice::Iter<'a, Action>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}
