//! Peer identifiers.
//!
//! §III-D of the paper: a peer ID is 20 bytes, "a string composed of the
//! client ID and a randomly generated string. This random string is
//! regenerated each time the client is restarted. The client ID is a string
//! composed of the client name and version number, e.g., M4-0-2 for the
//! mainline client in version 4.0.2." The paper de-duplicates peers by
//! (IP, client ID), since the random suffix changes across restarts.

use serde::{Deserialize, Serialize};

/// Length of a peer ID in bytes.
pub const PEER_ID_LEN: usize = 20;

/// Known client families observed in the paper's traces (§III-D mentions
/// "around 20 different BitTorrent clients"). The simulator assigns these
/// to remote peers to reproduce the identification noise the analysis
/// pipeline must cope with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClientKind {
    /// Mainline 4.0.2 — the instrumented client of the paper.
    Mainline402,
    /// Mainline 4.0.0 (first release with the new seed-state choke).
    Mainline400,
    /// An older mainline without the new seed algorithm.
    Mainline362,
    /// Azureus-style client.
    Azureus,
    /// BitComet-style client.
    BitComet,
    /// libtorrent/rtorrent-style client.
    LibTorrent,
    /// A client with the super-seeding plugin enabled (§IV-A.1).
    SuperSeeder,
    /// A free-riding client that never uploads (§IV-B).
    FreeRider,
}

impl ClientKind {
    /// The printable client-ID prefix embedded in the peer ID.
    pub fn client_id(&self) -> &'static str {
        match self {
            ClientKind::Mainline402 => "M4-0-2--",
            ClientKind::Mainline400 => "M4-0-0--",
            ClientKind::Mainline362 => "M3-6-2--",
            ClientKind::Azureus => "-AZ2304-",
            ClientKind::BitComet => "-BC0059-",
            ClientKind::LibTorrent => "-lt0C00-",
            ClientKind::SuperSeeder => "-SS1000-",
            ClientKind::FreeRider => "-FR0001-",
        }
    }

    /// All kinds, for building client mixes.
    pub fn all() -> &'static [ClientKind] {
        &[
            ClientKind::Mainline402,
            ClientKind::Mainline400,
            ClientKind::Mainline362,
            ClientKind::Azureus,
            ClientKind::BitComet,
            ClientKind::LibTorrent,
            ClientKind::SuperSeeder,
            ClientKind::FreeRider,
        ]
    }
}

/// SplitMix64 finalizer: a bijection on `u64`, so distinct inputs stay
/// distinct while adjacent values scatter.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A 20-byte peer identifier: an 8-byte client ID plus 12 random bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeerId(pub [u8; PEER_ID_LEN]);

impl PeerId {
    /// Build a peer ID for `kind` with the given random suffix.
    ///
    /// The suffix models the per-process random string; restarting a client
    /// produces a new suffix but the same client ID. Distinct suffixes are
    /// guaranteed distinct IDs: the suffix is scrambled by a bijective
    /// 64-bit mixer and then written out as eleven base-75 digits
    /// (75^11 > 2^64), so the digits encode the whole mixed value.
    pub fn new(kind: ClientKind, random_suffix: u64) -> PeerId {
        let mut bytes = [0u8; PEER_ID_LEN];
        bytes[..8].copy_from_slice(kind.client_id().as_bytes());
        // 12 printable bytes derived from the suffix: eleven injective
        // base-75 digits of the mixed suffix plus one decorative byte.
        let mut state = splitmix64(random_suffix);
        for b in bytes[8..19].iter_mut() {
            *b = b'0' + (state % 75) as u8; // printable ASCII range
            state /= 75;
        }
        bytes[19] = b'0' + (splitmix64(!random_suffix) % 75) as u8;
        PeerId(bytes)
    }

    /// The client-ID prefix (first 8 bytes) as a string.
    pub fn client_id(&self) -> String {
        String::from_utf8_lossy(&self.0[..8]).into_owned()
    }

    /// Recover the [`ClientKind`] from the client-ID prefix, if recognised.
    pub fn kind(&self) -> Option<ClientKind> {
        ClientKind::all()
            .iter()
            .copied()
            .find(|k| k.client_id().as_bytes() == &self.0[..8])
    }
}

impl std::fmt::Debug for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PeerId({})", String::from_utf8_lossy(&self.0))
    }
}

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(&self.0))
    }
}

/// A simulated IPv4 address. Peers behind the same NAT share one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// Dotted-quad rendering.
    pub fn to_dotted(&self) -> String {
        let b = self.0.to_be_bytes();
        format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

impl std::fmt::Display for IpAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_dotted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_id_embeds_client_id() {
        let id = PeerId::new(ClientKind::Mainline402, 12345);
        assert_eq!(id.client_id(), "M4-0-2--");
        assert_eq!(id.kind(), Some(ClientKind::Mainline402));
    }

    #[test]
    fn restart_changes_suffix_not_client_id() {
        let a = PeerId::new(ClientKind::Azureus, 1);
        let b = PeerId::new(ClientKind::Azureus, 2);
        assert_ne!(a, b);
        assert_eq!(a.client_id(), b.client_id());
    }

    #[test]
    fn same_seed_is_deterministic() {
        assert_eq!(
            PeerId::new(ClientKind::BitComet, 9),
            PeerId::new(ClientKind::BitComet, 9)
        );
    }

    #[test]
    fn suffix_is_printable() {
        let id = PeerId::new(ClientKind::LibTorrent, u64::MAX);
        assert!(id.0[8..].iter().all(|b| b.is_ascii_graphic()));
    }

    #[test]
    fn distinct_suffixes_yield_distinct_ids() {
        // Regression: the generator used to seed itself with
        // `suffix | 1`, collapsing every even/odd adjacent pair
        // (bt-net had to step its suffixes by 2 to dodge it).
        let mut seen = std::collections::HashSet::new();
        for suffix in 0..4096u64 {
            assert!(
                seen.insert(PeerId::new(ClientKind::Mainline402, suffix)),
                "suffix {suffix} collided with an earlier suffix"
            );
        }
        // The historical failure mode, spelled out.
        for even in [0u64, 2, 40, 1000, u64::MAX - 1] {
            assert_ne!(
                PeerId::new(ClientKind::Azureus, even),
                PeerId::new(ClientKind::Azureus, even | 1),
                "adjacent even/odd suffixes {even}/{} must differ",
                even | 1
            );
        }
    }

    #[test]
    fn all_client_ids_are_8_bytes_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in ClientKind::all() {
            assert_eq!(k.client_id().len(), 8);
            assert!(seen.insert(k.client_id()));
        }
    }

    #[test]
    fn ip_formatting() {
        assert_eq!(IpAddr(0xC0A80001).to_dotted(), "192.168.0.1");
    }
}
