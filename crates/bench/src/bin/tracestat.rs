//! `tracestat` — inspect one scenario's trace: per-peer entropy ratios
//! cross-tabulated with arrival progress, membership, and byte tallies.
//! A development/debugging companion to `figures`.

use bt_analysis::{entropy, fairness, StateWindow};
use bt_bench::report::table;
use bt_instrument::identify::PeerRegistry;
use bt_torrents::{run_scenario, torrent, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(7);
    let mut cfg = RunConfig::default();
    if args.iter().any(|a| a == "--quick") {
        cfg = RunConfig::quick();
    }
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if let Some(s) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            cfg.seed = s;
        }
    }
    let outcome = run_scenario(&torrent(id), &cfg);
    let trace = &outcome.trace;
    eprintln!(
        "torrent {id}: scaled {}s/{}l, {} pieces, {} events, local seed_at={:?}",
        outcome.scaled.seeds,
        outcome.scaled.leechers,
        outcome.scaled.pieces,
        trace.len(),
        trace.meta.seed_at.map(|t| t.as_secs())
    );
    let reg = PeerRegistry::from_trace(trace);
    let ent = entropy(trace);
    let fair = fairness(trace, StateWindow::Leecher);

    let mut rows = Vec::new();
    for p in &ent.peers {
        let m = reg.membership(p.handle).expect("member");
        let bytes = fair.ranked.iter().find(|b| b.handle == p.handle);
        rows.push(vec![
            p.handle.to_string(),
            format!("{}", m.pieces_on_arrival),
            format!("{:.0}", m.joined.as_secs_f64()),
            format!("{:.0}", p.membership_secs),
            format!("{:.2}", p.local_in_remote),
            format!("{:.2}", p.remote_in_local),
            bytes.map_or("0".into(), |b| (b.downloaded / 1024).to_string()),
            bytes.map_or("0".into(), |b| (b.uploaded / 1024).to_string()),
        ]);
    }
    rows.sort_by_key(|r| r[4].parse::<f64>().map(|v| (v * 100.0) as i64).unwrap_or(0));
    println!(
        "{}",
        table(
            &[
                "handle",
                "arr.pieces",
                "join_s",
                "member_s",
                "a/b",
                "c/d",
                "dlKiB",
                "ulKiB"
            ],
            &rows
        )
    );
}
