//! Streaming time-series on top of the metrics registry.
//!
//! A [`SeriesStore`] keeps one fixed-capacity ring of `(t_micros, f64)`
//! points per series name. Points arrive two ways:
//!
//! * [`SeriesStore::sample_registry`] / [`SeriesStore::append_snapshot`]
//!   append the current value of every counter and gauge (histograms
//!   are skipped — their quantiles already live in snapshots);
//! * [`SeriesStore::record`] appends a single float point directly, for
//!   derived observables (entropy, ratios) that are not integer
//!   instruments.
//!
//! When a ring fills it is *decimated*: every other point is dropped
//! and the series' stride doubles, so only every stride-th subsequent
//! append is kept. The retained points are therefore a pure function of
//! the append sequence — under a manual [`TimeSource`](crate::TimeSource)
//! the serialized store is byte-identical run to run, which is what the
//! series determinism tests pin. Wall-clock stores trade that for
//! liveness but keep the same bounded memory.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::export::escape_json_into;
use crate::registry::{Registry, Snapshot};

/// Default per-series ring capacity (points kept before decimation).
pub const DEFAULT_CAPACITY: usize = 512;

#[derive(Debug)]
struct Ring {
    /// Keep one append in `stride`; always a power of two.
    stride: u64,
    /// Total appends offered to this ring (kept or not).
    offered: u64,
    points: VecDeque<(u64, f64)>,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            stride: 1,
            offered: 0,
            points: VecDeque::new(),
        }
    }

    fn push(&mut self, capacity: usize, t_micros: u64, value: f64) {
        let keep = self.offered.is_multiple_of(self.stride);
        self.offered += 1;
        if !keep {
            return;
        }
        if self.points.len() == capacity {
            // Decimate: keep even positions, double the stride. Kept
            // points sat at multiples of the old stride, so the
            // survivors sit at multiples of the new one and the
            // `offered % stride` gate above stays aligned.
            let mut i = 0;
            self.points.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.stride *= 2;
            if !(self.offered - 1).is_multiple_of(self.stride) {
                return;
            }
        }
        self.points.push_back((t_micros, value));
    }
}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    series: Mutex<BTreeMap<String, Ring>>,
}

/// Bounded multi-series store; see the [module docs](self).
///
/// Cloning is cheap and all clones share the same rings, so a sim
/// thread can append while an HTTP server thread serializes.
#[derive(Clone, Debug)]
pub struct SeriesStore {
    registry: Registry,
    inner: Arc<Inner>,
}

/// One exported series: retained points plus the stride they survived.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesView {
    /// Series name (metric name, `name{label}` for labeled metrics).
    pub name: String,
    /// Current keep-one-in-`stride` decimation factor.
    pub stride: u64,
    /// Retained `(t_micros, value)` points, oldest first.
    pub points: Vec<(u64, f64)>,
}

impl SeriesStore {
    /// New store sampling `registry`, with [`DEFAULT_CAPACITY`] points
    /// per series.
    pub fn new(registry: &Registry) -> SeriesStore {
        SeriesStore::with_capacity(registry, DEFAULT_CAPACITY)
    }

    /// New store with an explicit per-series ring capacity (min 2).
    pub fn with_capacity(registry: &Registry, capacity: usize) -> SeriesStore {
        SeriesStore {
            registry: registry.clone(),
            inner: Arc::new(Inner {
                capacity: capacity.max(2),
                series: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The registry this store samples and reads time from.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Append one point to `name` at the registry clock's current time.
    ///
    /// Non-finite values are dropped (JSON has no NaN/Inf).
    pub fn record(&self, name: &str, value: f64) {
        self.record_at(name, self.registry.now_micros(), value);
    }

    /// Append one point to `name` at an explicit timestamp.
    pub fn record_at(&self, name: &str, t_micros: u64, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut map = self.inner.series.lock().unwrap();
        map.entry(name.to_string()).or_insert_with(Ring::new).push(
            self.inner.capacity,
            t_micros,
            value,
        );
    }

    /// Snapshot the registry and append every counter and gauge.
    pub fn sample_registry(&self) {
        self.append_snapshot(&self.registry.snapshot());
    }

    /// Append every counter and gauge of an existing snapshot (one
    /// point per instrument, timestamped from the snapshot).
    ///
    /// Labeled instruments become `name{label}` series. Histograms are
    /// skipped: their bucket vectors don't reduce to one float, and the
    /// JSONL snapshot stream already carries them.
    pub fn append_snapshot(&self, snap: &Snapshot) {
        let mut map = self.inner.series.lock().unwrap();
        let capacity = self.inner.capacity;
        let mut push = |name: &&'static str, label: &str, v: f64| {
            let key = if label.is_empty() {
                (*name).to_string()
            } else {
                format!("{name}{{{label}}}")
            };
            map.entry(key)
                .or_insert_with(Ring::new)
                .push(capacity, snap.at_micros, v);
        };
        for (name, label, v) in &snap.counters {
            push(name, label, *v as f64);
        }
        for (name, label, v) in &snap.gauges {
            push(name, label, *v as f64);
        }
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.inner.series.lock().unwrap().len()
    }

    /// True when no series has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorted names of all series.
    pub fn names(&self) -> Vec<String> {
        self.inner.series.lock().unwrap().keys().cloned().collect()
    }

    /// Retained points of one series, oldest first.
    pub fn get(&self, name: &str) -> Option<Vec<(u64, f64)>> {
        self.inner
            .series
            .lock()
            .unwrap()
            .get(name)
            .map(|r| r.points.iter().copied().collect())
    }

    /// All series (optionally restricted to names starting with
    /// `prefix`), sorted by name.
    pub fn views(&self, prefix: Option<&str>) -> Vec<SeriesView> {
        self.inner
            .series
            .lock()
            .unwrap()
            .iter()
            .filter(|(name, _)| prefix.is_none_or(|p| name.starts_with(p)))
            .map(|(name, ring)| SeriesView {
                name: name.clone(),
                stride: ring.stride,
                points: ring.points.iter().copied().collect(),
            })
            .collect()
    }

    /// Serialize as one JSON object, sorted by series name:
    ///
    /// ```json
    /// {"series":[{"name":"sim.live_peers","stride":1,
    ///             "points":[[0,4],[30000000,7]]}]}
    /// ```
    ///
    /// Deterministic whenever the append sequence is: names are sorted,
    /// point order is append order, and floats render via Rust's
    /// shortest-roundtrip `Display` (integral values print bare).
    pub fn to_json(&self, prefix: Option<&str>) -> String {
        let views = self.views(prefix);
        let mut out = String::with_capacity(64 + views.len() * 128);
        out.push_str("{\"series\":[");
        for (i, view) in views.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json_into(&mut out, &view.name);
            out.push_str(&format!("\",\"stride\":{},\"points\":[", view.stride));
            for (j, (t, v)) in view.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{t},{}]", json_f64(*v)));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Render a finite float as valid JSON. Integral values print bare
/// (`4`, not `4.0`) so counter/gauge-sourced points read as the
/// integers they are; everything else uses Rust's shortest-roundtrip
/// `Display`, which is deterministic for identical bits.
pub fn json_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimeSource;

    fn store(capacity: usize) -> SeriesStore {
        let reg = Registry::new(TimeSource::manual());
        SeriesStore::with_capacity(&reg, capacity)
    }

    #[test]
    fn record_appends_points_in_order() {
        let s = store(8);
        s.registry().time().advance_to(10);
        s.record("x", 1.0);
        s.registry().time().advance_to(20);
        s.record("x", 2.5);
        assert_eq!(s.get("x").unwrap(), vec![(10, 1.0), (20, 2.5)]);
        assert_eq!(s.names(), vec!["x".to_string()]);
    }

    #[test]
    fn non_finite_points_are_dropped() {
        let s = store(8);
        s.record("x", f64::NAN);
        s.record("x", f64::INFINITY);
        assert!(s.get("x").is_none());
    }

    #[test]
    fn decimation_keeps_even_spacing() {
        let s = store(4);
        for i in 0..9u64 {
            s.record_at("x", i, i as f64);
        }
        // Appends 0..4 fill the ring; append 4 decimates to {0,2},
        // stride 2, then keeps 4 and 6; append 8 decimates to {0,4},
        // stride 4, then keeps 8.
        let pts: Vec<u64> = s.get("x").unwrap().iter().map(|(t, _)| *t).collect();
        assert_eq!(pts, vec![0, 4, 8]);
        assert_eq!(s.views(None)[0].stride, 4);
    }

    #[test]
    fn decimation_never_exceeds_capacity() {
        let s = store(16);
        for i in 0..10_000u64 {
            s.record_at("x", i, 0.0);
        }
        let pts = s.get("x").unwrap();
        assert!(pts.len() <= 16, "len={}", pts.len());
        // Survivors stay evenly strided.
        let stride = s.views(None)[0].stride;
        for w in pts.windows(2) {
            assert_eq!(w[1].0 - w[0].0, stride);
        }
    }

    #[test]
    fn snapshot_sampling_covers_counters_and_gauges() {
        let reg = Registry::new(TimeSource::manual());
        let s = SeriesStore::new(&reg);
        reg.counter("c.total").add(3);
        reg.counter_with("net.bytes", "p0").add(7);
        reg.gauge("g.depth").set(-2);
        reg.histogram("h.lat", crate::buckets::LATENCY_US)
            .observe(5);
        reg.time().advance_to(1000);
        s.sample_registry();
        assert_eq!(s.get("c.total").unwrap(), vec![(1000, 3.0)]);
        assert_eq!(s.get("net.bytes{p0}").unwrap(), vec![(1000, 7.0)]);
        assert_eq!(s.get("g.depth").unwrap(), vec![(1000, -2.0)]);
        assert!(s.get("h.lat").is_none(), "histograms are not series");
    }

    #[test]
    fn json_export_is_sorted_filtered_and_deterministic() {
        let s = store(8);
        s.record_at("b.second", 5, 2.0);
        s.record_at("a.first", 3, 0.5);
        let all = s.to_json(None);
        assert_eq!(
            all,
            "{\"series\":[\
             {\"name\":\"a.first\",\"stride\":1,\"points\":[[3,0.5]]},\
             {\"name\":\"b.second\",\"stride\":1,\"points\":[[5,2]]}\
             ]}"
        );
        assert_eq!(all, s.to_json(None));
        assert_eq!(
            s.to_json(Some("b.")),
            "{\"series\":[{\"name\":\"b.second\",\"stride\":1,\"points\":[[5,2]]}]}"
        );
        assert_eq!(s.to_json(Some("zzz")), "{\"series\":[]}");
    }

    #[test]
    fn clones_share_rings() {
        let s = store(8);
        let s2 = s.clone();
        s2.record_at("x", 1, 1.0);
        assert_eq!(s.get("x").unwrap().len(), 1);
    }

    #[test]
    fn capacity_one_is_clamped_to_two_and_still_decimates() {
        // A one-point ring cannot decimate (keeping "even positions"
        // of one point never frees a slot), so the constructor clamps
        // to 2; the ring must then behave exactly like `store(2)`.
        let s = store(1);
        for i in 0..64u64 {
            s.record_at("x", i, i as f64);
        }
        let pts = s.get("x").unwrap();
        assert!(!pts.is_empty() && pts.len() <= 2, "len={}", pts.len());
        let view = &s.views(None)[0];
        assert!(view.stride.is_power_of_two());
        // Every survivor sits on the stride grid.
        for (t, _) in &pts {
            assert_eq!(t % view.stride, 0, "t={t} stride={}", view.stride);
        }
    }

    #[test]
    fn constant_series_decimates_like_any_other() {
        // Decimation is positional, not value-based: a flat line must
        // not collapse to one point or dodge the stride doubling.
        let s = store(4);
        for i in 0..33u64 {
            s.record_at("flat", i, 7.0);
        }
        let view = &s.views(None)[0];
        assert_eq!(view.stride, 16);
        let pts: Vec<u64> = view.points.iter().map(|(t, _)| *t).collect();
        assert_eq!(pts, vec![0, 16, 32]);
        assert!(view.points.iter().all(|&(_, v)| v == 7.0));
    }

    #[test]
    fn empty_store_exports_exact_bytes() {
        let s = store(8);
        assert_eq!(s.to_json(None), "{\"series\":[]}");
        assert_eq!(s.to_json(Some("any.")), "{\"series\":[]}");
        // A store whose only offered points were non-finite is still
        // empty on the wire.
        s.record("x", f64::NEG_INFINITY);
        assert_eq!(s.to_json(None), "{\"series\":[]}");
    }
}
