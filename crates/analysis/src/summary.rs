//! One-stop session summary: every headline metric of the paper's
//! pipeline computed from a single trace, for harnesses, CLIs, and
//! downstream dashboards.

use crate::clients::{client_breakdown, ClientBreakdown};
use crate::entropy::{entropy, EntropySummary};
use crate::equilibrium::{equilibrium, EquilibriumSummary};
use crate::fairness::{fairness, FairnessSummary, StateWindow};
use crate::interarrival::InterarrivalAnalysis;
use crate::messages::MessageStats;
use crate::replication::ReplicationSeries;
use crate::transient::TransientSummary;
use crate::unchoke::{pearson, unchoke_correlation, UnchokeCorrelation};
use bt_instrument::identify::PeerRegistry;
use bt_instrument::trace::Trace;
use serde::{Deserialize, Serialize};

/// Everything the paper measures about one instrumented session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Torrent label from the trace metadata.
    pub torrent: String,
    /// Figure 1: entropy characterisation.
    pub entropy: EntropySummary,
    /// Figures 2–6: replication series (full session).
    pub replication: ReplicationSeries,
    /// §IV-A.2: transient-phase estimates (leecher-state window).
    pub transient: TransientSummary,
    /// Figure 7: piece interarrivals.
    pub pieces: InterarrivalAnalysis,
    /// Figure 8: block interarrivals.
    pub blocks: InterarrivalAnalysis,
    /// Figure 9: leecher-state fairness.
    pub fairness_ls: FairnessSummary,
    /// Figure 11: seed-state fairness.
    pub fairness_ss: FairnessSummary,
    /// Figure 10: unchoke/interest correlation points.
    pub unchoke: UnchokeCorrelation,
    /// Pearson r of the leecher-state scatter.
    pub unchoke_r_ls: f64,
    /// Pearson r of the seed-state scatter.
    pub unchoke_r_ss: f64,
    /// §IV-B.2: choke equilibrium, leecher state.
    pub equilibrium_ls: EquilibriumSummary,
    /// §IV-B.2: choke equilibrium, seed state.
    pub equilibrium_ss: EquilibriumSummary,
    /// §III-C: message tallies and overhead.
    pub messages: MessageStats,
    /// §III-D: per-client-family breakdown.
    pub clients: ClientBreakdown,
    /// §III-D: connections observed / unique peers / multi-ID fraction.
    pub connections: usize,
    /// Unique peers after (IP, client-ID) de-duplication.
    pub unique_peers: usize,
    /// Fraction of IPs carrying several peer IDs.
    pub multi_id_ip_fraction: f64,
}

impl SessionSummary {
    /// Run the whole pipeline on one trace. Piece size is needed to turn
    /// the rarest-set drain slope into an implied seed rate.
    pub fn from_trace(trace: &Trace, piece_len: u32) -> SessionSummary {
        let registry = PeerRegistry::from_trace(trace);
        let replication = ReplicationSeries::from_trace(trace);
        let ls_series = replication.leecher_state(trace);
        let (equilibrium_ls, equilibrium_ss) = equilibrium(trace);
        let unchoke = unchoke_correlation(trace);
        SessionSummary {
            torrent: trace.meta.torrent.clone(),
            entropy: entropy(trace),
            transient: TransientSummary::from_series(&ls_series, piece_len),
            replication,
            pieces: InterarrivalAnalysis::pieces(trace),
            blocks: InterarrivalAnalysis::blocks(trace),
            fairness_ls: fairness(trace, StateWindow::Leecher),
            fairness_ss: fairness(trace, StateWindow::Seed),
            unchoke_r_ls: pearson(&unchoke.leecher),
            unchoke_r_ss: pearson(&unchoke.seed),
            unchoke,
            equilibrium_ls,
            equilibrium_ss,
            messages: MessageStats::from_trace(trace),
            clients: client_breakdown(trace),
            connections: registry.memberships.len(),
            unique_peers: registry.unique_peers(),
            multi_id_ip_fraction: registry.multi_id_ip_fraction(),
        }
    }

    /// Compact single-line verdict used by CLIs.
    pub fn one_liner(&self) -> String {
        format!(
            "{}: a/b p50 {:.2}, {} state, first-blocks ×{:.2}, LS top-set {:.2}, SS jain {:.2}, {} peers",
            self.torrent,
            self.entropy.local_in_remote.p50,
            if self.replication.is_transient() { "transient" } else { "steady" },
            self.blocks.first_slowdown(),
            self.fairness_ls.top_set_upload_share(),
            self.fairness_ss.jain_index(),
            self.unique_peers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_instrument::trace::{TraceEvent, TraceMeta};
    use bt_wire::message::BlockRef;
    use bt_wire::peer_id::{ClientKind, IpAddr, PeerId};
    use bt_wire::time::Instant;

    fn trace() -> Trace {
        let meta = TraceMeta {
            torrent: "summary-test".into(),
            torrent_id: 3,
            num_pieces: 4,
            num_blocks: 64,
            initial_seeds: 1,
            initial_leechers: 2,
            session_end: Instant::from_secs(1000),
            seed_at: Some(Instant::from_secs(400)),
        };
        let mut tr = Trace::new(meta);
        tr.push(
            Instant::from_secs(0),
            TraceEvent::PeerJoined {
                peer: 0,
                ip: IpAddr(1),
                peer_id: PeerId::new(ClientKind::Azureus, 1),
                pieces_on_arrival: 2,
                total_pieces: 4,
            },
        );
        tr.push(
            Instant::from_secs(0),
            TraceEvent::LocalInterest {
                peer: 0,
                interested: true,
            },
        );
        tr.push(
            Instant::from_secs(5),
            TraceEvent::RemoteInterest {
                peer: 0,
                interested: true,
            },
        );
        for (t, piece) in [(10u64, 0u32), (20, 1), (30, 2), (40, 3)] {
            for blk in 0..16u32 {
                tr.push(
                    Instant::from_secs(t),
                    TraceEvent::BlockReceived {
                        peer: 0,
                        block: BlockRef {
                            piece,
                            offset: blk * 16384,
                            length: 16384,
                        },
                    },
                );
            }
            tr.push(Instant::from_secs(t), TraceEvent::PieceCompleted { piece });
        }
        tr.push(
            Instant::from_secs(50),
            TraceEvent::AvailabilitySample {
                min: 1,
                mean: 1.5,
                max: 2,
                rarest_set_size: 2,
                peer_set_size: 1,
            },
        );
        tr.push(
            Instant::from_secs(500),
            TraceEvent::BlockSent {
                peer: 0,
                block: BlockRef {
                    piece: 0,
                    offset: 0,
                    length: 16384,
                },
            },
        );
        tr
    }

    #[test]
    fn summary_computes_everything() {
        let s = SessionSummary::from_trace(&trace(), 256 * 1024);
        assert_eq!(s.torrent, "summary-test");
        assert_eq!(s.connections, 1);
        assert_eq!(s.unique_peers, 1);
        assert_eq!(s.pieces.count, 4);
        assert_eq!(s.blocks.count, 64);
        assert!(!s.replication.is_transient());
        assert!((s.entropy.local_in_remote.p50 - 1.0).abs() < 1e-9);
        assert_eq!(s.fairness_ss.total_uploaded, 16384);
        assert_eq!(s.fairness_ls.total_downloaded, 64 * 16384);
    }

    #[test]
    fn one_liner_is_compact() {
        let s = SessionSummary::from_trace(&trace(), 256 * 1024);
        let line = s.one_liner();
        assert!(line.starts_with("summary-test:"));
        assert!(line.contains("steady"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn summary_serialises() {
        let s = SessionSummary::from_trace(&trace(), 256 * 1024);
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("summary-test"));
    }
}
